package parallel_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dragoon/internal/parallel"
)

func TestWorkersResolution(t *testing.T) {
	if got := parallel.Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := parallel.Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	prev := parallel.SetDefaultWorkers(2)
	defer parallel.SetDefaultWorkers(prev)
	if got := parallel.Workers(0); got != 2 {
		t.Errorf("Workers(0) with default 2 = %d", got)
	}
	if got := parallel.Workers(5); got != 5 {
		t.Errorf("explicit request must win over default: got %d", got)
	}
}

func TestForPoolBound(t *testing.T) {
	const n, workers = 64, 4
	var cur, peak atomic.Int64
	err := parallel.For(context.Background(), n, workers, func(i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent items, bound is %d", p, workers)
	}
}

func TestForRunsEveryIndexOnce(t *testing.T) {
	const n = 1000
	counts := make([]atomic.Int64, n)
	if err := parallel.For(context.Background(), n, 8, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestMapOrderingDeterminism(t *testing.T) {
	const n = 500
	for _, workers := range []int{1, 2, 8, 32} {
		out, err := parallel.Map(context.Background(), n, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForLowestIndexErrorWins(t *testing.T) {
	errAt := func(bad map[int]error) error {
		return parallel.For(context.Background(), 100, 8, func(i int) error {
			return bad[i]
		})
	}
	e7, e40 := errors.New("e7"), errors.New("e40")
	for trial := 0; trial < 20; trial++ {
		if err := errAt(map[int]error{40: e40, 7: e7}); !errors.Is(err, e7) {
			t.Fatalf("trial %d: got %v, want the lowest-index error e7", trial, err)
		}
	}
}

func TestForCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	var release sync.WaitGroup
	release.Add(1)
	done := make(chan error, 1)
	go func() {
		done <- parallel.For(ctx, 10_000, 2, func(i int) error {
			started.Add(1)
			release.Wait()
			return nil
		})
	}()
	for started.Load() < 2 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	release.Done()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("For did not return after cancellation")
	}
	if s := started.Load(); s >= 10_000 {
		t.Errorf("cancellation did not stop scheduling (all %d items started)", s)
	}
}

func TestForPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic was swallowed", workers)
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "boom-17") {
					t.Fatalf("workers=%d: panic %q lost the original value", workers, msg)
				}
			}()
			_ = parallel.For(context.Background(), 100, workers, func(i int) error {
				if i == 17 {
					panic("boom-17")
				}
				return nil
			})
		}()
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	if err := parallel.For(context.Background(), 0, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := parallel.For(context.Background(), -3, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn invoked for empty range")
	}
}

func TestDo(t *testing.T) {
	a, b := 0, 0
	if err := parallel.Do(
		func() error { a = 1; return nil },
		func() error { b = 2; return nil },
	); err != nil {
		t.Fatal(err)
	}
	if a != 1 || b != 2 {
		t.Errorf("tasks did not run: a=%d b=%d", a, b)
	}
	want := errors.New("first")
	err := parallel.Do(
		func() error { return want },
		func() error { return errors.New("second") },
	)
	if !errors.Is(err, want) {
		t.Errorf("Do returned %v, want lowest-index error", err)
	}
}

func TestChunksCoverRange(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{{10, 3}, {1, 8}, {100, 7}, {7, 7}, {8, 1}} {
		covered := make([]bool, tc.n)
		last := -1
		parallel.Chunks(tc.n, tc.workers, func(c, start, end int) {
			if c != last+1 {
				t.Fatalf("n=%d w=%d: chunk indices out of order", tc.n, tc.workers)
			}
			last = c
			for i := start; i < end; i++ {
				if covered[i] {
					t.Fatalf("n=%d w=%d: index %d covered twice", tc.n, tc.workers, i)
				}
				covered[i] = true
			}
		})
		for i, ok := range covered {
			if !ok {
				t.Fatalf("n=%d w=%d: index %d not covered", tc.n, tc.workers, i)
			}
		}
		if last+1 > parallel.Workers(tc.workers) {
			t.Fatalf("n=%d w=%d: %d chunks exceed worker bound", tc.n, tc.workers, last+1)
		}
	}
	if c := parallel.Chunks(0, 4, func(int, int, int) { t.Fatal("span called for n=0") }); c != 0 {
		t.Errorf("Chunks(0) = %d", c)
	}
}
