package poqoea

// Batched PoQoEA verification: many quality claims checked with ONE folded
// VPKE equation (package batch) instead of six scalar multiplications per
// revelation. This is the amortization the marketplace needs — with many
// tasks settling in the same round, every claim's revelations land in one
// multi-scalar multiplication — while bisection keeps the per-claim
// verdicts identical to Verify.

import (
	"context"
	"math/big"

	"dragoon/internal/batch"
	"dragoon/internal/elgamal"
	"dragoon/internal/parallel"
)

// Claim is one quality claim for batch verification: the encrypted answer
// vector, the claimed quality χ, the PoQoEA proof, and the public statement
// — exactly the arguments of one Verify call.
type Claim struct {
	Cts       []elgamal.Ciphertext
	Chi       int
	Proof     *Proof
	Statement Statement
}

// VerifyBatch verifies many quality claims against one requester key in a
// single fold. It returns one verdict per claim, and each verdict equals
// what Verify would return for that claim alone (up to the RLC soundness
// slack documented on package batch): structural checks run per claim
// exactly as in Verify, the VPKE revelations of ALL claims are verified in
// one folded multi-scalar multiplication, and a failed fold is bisected so
// only the claims with an actually-invalid revelation are rejected.
func VerifyBatch(pk *elgamal.PublicKey, claims []Claim) []bool {
	verdicts := make([]bool, len(claims))
	type pending struct {
		claim int
		wrong *WrongAnswer
	}
	var work []pending
	// counted[i] tracks χ plus the structurally valid revelations of claim
	// i; the coverage check runs after the fold, as in Verify.
	counted := make([]int, len(claims))
	for i := range claims {
		c := &claims[i]
		if c.Proof == nil || c.Statement.Validate(len(c.Cts)) != nil {
			continue
		}
		if c.Chi < 0 || c.Chi > len(c.Statement.GoldenIndices) {
			continue
		}
		n, ok := structuralCheck(len(c.Cts), c.Chi, c.Proof, c.Statement)
		if !ok {
			continue
		}
		counted[i] = n
		verdicts[i] = true // provisional: revelations still to verify
		for j := range c.Proof.Wrong {
			work = append(work, pending{claim: i, wrong: &c.Proof.Wrong[j]})
		}
	}

	// Lift in-range revelations to group elements (the g^m the fold needs;
	// the per-proof path pays the same lift inside VerifyValue) and build
	// the statements in input order.
	g := pk.Group
	sts, _ := parallel.Map(context.Background(), len(work), 0, func(k int) (batch.VPKEStatement, error) {
		w := work[k].wrong
		gm := w.Plain.Element
		if w.Plain.InRange {
			gm = nil
			if w.Plain.Value >= 0 { // VerifyValue rejects negative claims
				gm = g.ScalarBaseMul(big.NewInt(w.Plain.Value))
			}
		}
		return batch.VPKEStatement{
			H:     pk.H,
			Gm:    gm,
			Ct:    claims[work[k].claim].Cts[w.Index],
			Proof: w.Proof,
		}, nil
	})
	if ok, bad := batch.VerifyVPKE(g, sts); !ok {
		for _, k := range bad {
			verdicts[work[k].claim] = false
		}
	}
	for i := range claims {
		if verdicts[i] && counted[i] < len(claims[i].Statement.GoldenIndices) {
			verdicts[i] = false
		}
	}
	return verdicts
}
