package poqoea_test

import (
	"math/big"
	"math/rand"
	"testing"

	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/poqoea"
	"dragoon/internal/task"
	"dragoon/internal/vpke"
)

// claimFixture builds n independent quality claims under one key, each with
// some wrong golden answers so proofs carry revelations.
func claimFixture(t *testing.T, g group.Group, n int) (*elgamal.PrivateKey, []poqoea.Claim) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	sk, err := elgamal.KeyGen(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	claims := make([]poqoea.Claim, n)
	for i := range claims {
		inst, err := task.Generate(task.GenerateParams{
			ID: "batch", N: 12, RangeSize: 3, NumGolden: 4,
			Workers: 1, Threshold: 2, Budget: 10,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		st := inst.Golden.Statement(inst.Task.RangeSize)
		answers := append([]int64{}, inst.GroundTruth...)
		// Flip i%3+1 golden answers so χ varies across claims.
		for _, gi := range inst.Golden.Indices[:i%3+1] {
			answers[gi] = (answers[gi] + 1) % inst.Task.RangeSize
		}
		cts, err := poqoea.EncryptAnswers(&sk.PublicKey, answers, rng)
		if err != nil {
			t.Fatal(err)
		}
		chi, proof, err := poqoea.Prove(sk, cts, st, rng)
		if err != nil {
			t.Fatal(err)
		}
		claims[i] = poqoea.Claim{Cts: cts, Chi: chi, Proof: proof, Statement: st}
	}
	return sk, claims
}

// TestVerifyBatchMatchesVerify checks verdict-for-verdict agreement with
// per-claim Verify over a batch mixing honest claims, a corrupted VPKE
// proof, an underclaimed χ without coverage, and a structurally bad proof.
func TestVerifyBatchMatchesVerify(t *testing.T) {
	g := group.TestSchnorr()
	sk, claims := claimFixture(t, g, 8)

	// Corrupt one revelation's proof: that claim (and only it) must fail.
	tamperedProof := *claims[2].Proof
	tamperedProof.Wrong = append([]poqoea.WrongAnswer{}, claims[2].Proof.Wrong...)
	w := tamperedProof.Wrong[0]
	z := new(big.Int).Add(w.Proof.Z, big.NewInt(1))
	z.Mod(z, g.Order())
	w.Proof = &vpke.Proof{A: w.Proof.A, B: w.Proof.B, Z: z}
	tamperedProof.Wrong[0] = w
	claims[2].Proof = &tamperedProof

	// Underclaim without enough revelations: coverage check must fail.
	claims[5].Chi = claims[5].Chi - 1

	// Structurally bad: duplicate revelation index.
	dupProof := *claims[6].Proof
	dupProof.Wrong = append(append([]poqoea.WrongAnswer{}, claims[6].Proof.Wrong...), claims[6].Proof.Wrong[0])
	claims[6].Proof = &dupProof

	want := make([]bool, len(claims))
	for i, c := range claims {
		want[i] = poqoea.Verify(&sk.PublicKey, c.Cts, c.Chi, c.Proof, c.Statement)
	}
	if want[2] || want[5] || want[6] {
		t.Fatalf("fixture broken: tampered claims verify as %v", want)
	}
	got := poqoea.VerifyBatch(&sk.PublicKey, claims)
	for i := range claims {
		if got[i] != want[i] {
			t.Errorf("claim %d: batch verdict %v, Verify verdict %v", i, got[i], want[i])
		}
	}
}

func TestVerifyBatchOverBN254(t *testing.T) {
	if testing.Short() {
		t.Skip("BN254 batch fixture is slow")
	}
	g := group.BN254G1()
	sk, claims := claimFixture(t, g, 3)
	got := poqoea.VerifyBatch(&sk.PublicKey, claims)
	for i, c := range claims {
		want := poqoea.Verify(&sk.PublicKey, c.Cts, c.Chi, c.Proof, c.Statement)
		if got[i] != want {
			t.Errorf("claim %d: batch verdict %v, Verify verdict %v", i, got[i], want)
		}
	}
}

func TestVerifyBatchEmptyAndNil(t *testing.T) {
	g := group.TestSchnorr()
	sk, claims := claimFixture(t, g, 1)
	if out := poqoea.VerifyBatch(&sk.PublicKey, nil); len(out) != 0 {
		t.Error("nil batch should yield no verdicts")
	}
	claims = append(claims, poqoea.Claim{}) // nil proof, empty statement
	got := poqoea.VerifyBatch(&sk.PublicKey, claims)
	if !got[0] || got[1] {
		t.Errorf("verdicts %v, want [true false]", got)
	}
}
