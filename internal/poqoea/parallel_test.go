package poqoea_test

import (
	"bytes"
	"math/rand"
	"testing"

	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/parallel"
	"dragoon/internal/poqoea"
)

// streamReader is a deterministic randomness stream (seeded math/rand) used
// to compare sequential and parallel executions draw-for-draw.
type streamReader struct{ r *rand.Rand }

func (s streamReader) Read(p []byte) (int, error) { return s.r.Read(p) }

func stream(seed int64) streamReader { return streamReader{r: rand.New(rand.NewSource(seed))} }

// TestParallelCryptoMatchesSequential pins the parallel layer's determinism
// contract at the crypto level: with the same randomness stream,
// EncryptAnswers and Prove produce byte-for-byte identical ciphertexts and
// proofs at any pool size, and Verify accepts under both.
func TestParallelCryptoMatchesSequential(t *testing.T) {
	g := group.TestSchnorr()
	sk, err := elgamal.KeyGen(g, stream(1))
	if err != nil {
		t.Fatal(err)
	}
	st := poqoea.Statement{
		GoldenIndices: []int{0, 3, 5, 8, 11, 13, 17, 19},
		GoldenAnswers: []int64{1, 0, 2, 1, 0, 3, 2, 1},
		RangeSize:     4,
	}
	answers := make([]int64, 24)
	for i := range answers {
		answers[i] = int64(i % 4) // some golden answers right, some wrong
	}

	type run struct {
		cts   []elgamal.Ciphertext
		chi   int
		proof *poqoea.Proof
	}
	runAt := func(workers int) run {
		prev := parallel.SetDefaultWorkers(workers)
		defer parallel.SetDefaultWorkers(prev)
		cts, err := poqoea.EncryptAnswers(&sk.PublicKey, answers, stream(2))
		if err != nil {
			t.Fatalf("workers=%d: encrypt: %v", workers, err)
		}
		chi, proof, err := poqoea.Prove(sk, cts, st, stream(3))
		if err != nil {
			t.Fatalf("workers=%d: prove: %v", workers, err)
		}
		if !poqoea.Verify(&sk.PublicKey, cts, chi, proof, st) {
			t.Fatalf("workers=%d: proof rejected", workers)
		}
		return run{cts: cts, chi: chi, proof: proof}
	}

	seq := runAt(1)
	for _, workers := range []int{2, 4, 8} {
		par := runAt(workers)
		if par.chi != seq.chi {
			t.Errorf("workers=%d: quality %d, sequential %d", workers, par.chi, seq.chi)
		}
		for i := range seq.cts {
			if !bytes.Equal(
				elgamal.MarshalCiphertext(g, seq.cts[i]),
				elgamal.MarshalCiphertext(g, par.cts[i]),
			) {
				t.Fatalf("workers=%d: ciphertext %d differs from sequential", workers, i)
			}
		}
		if len(par.proof.Wrong) != len(seq.proof.Wrong) {
			t.Fatalf("workers=%d: %d revelations, sequential %d",
				workers, len(par.proof.Wrong), len(seq.proof.Wrong))
		}
		for i, w := range seq.proof.Wrong {
			p := par.proof.Wrong[i]
			if p.Index != w.Index || p.Plain.InRange != w.Plain.InRange || p.Plain.Value != w.Plain.Value {
				t.Fatalf("workers=%d: revelation %d differs from sequential", workers, i)
			}
			if !g.Equal(p.Proof.A, w.Proof.A) || !g.Equal(p.Proof.B, w.Proof.B) ||
				p.Proof.Z.Cmp(w.Proof.Z) != 0 {
				t.Fatalf("workers=%d: VPKE transcript %d differs from sequential", workers, i)
			}
		}
	}
}
