// Package poqoea implements the paper's core contribution: the Proof of
// Quality of an Encrypted Answer (§V-A, Fig. 3). Given a vector of
// exponential-ElGamal ciphertexts answering a HIT whose golden-standard
// questions have indices G and ground truth Gs, the requester proves an
// upper bound χ on the answer's quality
//
//	Quality(a) = Σ_{i∈G} [a_i ≡ s_i]
//
// by revealing — with a verifiable-decryption (VPKE) proof each — the
// plaintexts of exactly those golden-standard positions the worker answered
// incorrectly. The verifier accepts iff χ plus the number of valid
// wrong-answer revelations covers all |G| golden standards; soundness of
// VPKE then makes χ a sound upper bound ("upper-bound soundness"), which
// suffices for fairness because the reward is monotone in quality. The
// construction is zero-knowledge in the paper's "special" sense: only
// already-simulatable information (the worker's performance on the few
// golden standards) is leaked.
package poqoea

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/parallel"
	"dragoon/internal/vpke"
)

// Statement fixes the public parameters of a quality proof: the golden
// standard indices/answers and the per-question option range.
type Statement struct {
	// GoldenIndices are the positions of golden-standard questions within
	// the answer vector (the paper's G ⊊ [0, N)).
	GoldenIndices []int
	// GoldenAnswers is the ground truth s_i for each golden index (Gs).
	GoldenAnswers []int64
	// RangeSize is the number of options per question (|range|).
	RangeSize int64
}

// Validate checks structural well-formedness of the statement.
func (s Statement) Validate(numQuestions int) error {
	if len(s.GoldenIndices) == 0 {
		return errors.New("poqoea: no golden standards")
	}
	if len(s.GoldenIndices) != len(s.GoldenAnswers) {
		return fmt.Errorf("poqoea: %d golden indices but %d answers",
			len(s.GoldenIndices), len(s.GoldenAnswers))
	}
	if s.RangeSize <= 1 {
		return fmt.Errorf("poqoea: range size %d too small", s.RangeSize)
	}
	seen := make(map[int]bool, len(s.GoldenIndices))
	for j, idx := range s.GoldenIndices {
		if idx < 0 || idx >= numQuestions {
			return fmt.Errorf("poqoea: golden index %d out of [0,%d)", idx, numQuestions)
		}
		if seen[idx] {
			return fmt.Errorf("poqoea: duplicate golden index %d", idx)
		}
		seen[idx] = true
		if s.GoldenAnswers[j] < 0 || s.GoldenAnswers[j] >= s.RangeSize {
			return fmt.Errorf("poqoea: golden answer %d out of range", s.GoldenAnswers[j])
		}
	}
	return nil
}

// expected returns the ground-truth answer for golden index idx.
func (s Statement) expected(idx int) (int64, bool) {
	for j, gi := range s.GoldenIndices {
		if gi == idx {
			return s.GoldenAnswers[j], true
		}
	}
	return 0, false
}

// WrongAnswer is one revealed incorrect golden-standard answer with its
// proof of correct decryption.
type WrongAnswer struct {
	// Index is the golden-standard position in the answer vector.
	Index int
	// Plain is the revealed decryption (integer in range, or bare element).
	Plain elgamal.Plaintext
	// Proof attests that the ciphertext at Index decrypts to Plain.
	Proof *vpke.Proof
}

// Proof is a PoQoEA proof: the set of wrong golden-standard answers. Its
// size is |G| − χ VPKE proofs, independent of the task size N — the source
// of the paper's constant-factor advantage over generic zk-proofs.
type Proof struct {
	Wrong []WrongAnswer
}

// Prove computes the true quality χ of the encrypted answer vector cts and a
// proof that χ is (an upper bound on) that quality. Only golden-standard
// positions are ever decrypted into the proof; all other answers stay
// confidential.
// Prove draws one Schnorr nonce per golden standard sequentially from rnd
// (so seeded runs stay reproducible) and then computes the per-question
// decryptions and VPKE transcripts concurrently; the resulting proof is
// byte-for-byte the sequential one.
func Prove(sk *elgamal.PrivateKey, cts []elgamal.Ciphertext, st Statement, rnd io.Reader) (int, *Proof, error) {
	if err := st.Validate(len(cts)); err != nil {
		return 0, nil, err
	}
	nonces := make([]*big.Int, len(st.GoldenIndices))
	for j, idx := range st.GoldenIndices {
		x, err := group.RandomScalar(sk.Group, rnd)
		if err != nil {
			return 0, nil, fmt.Errorf("poqoea: proving decryption of answer %d: %w", idx, err)
		}
		nonces[j] = x
	}
	type opened struct {
		plain elgamal.Plaintext
		proof *vpke.Proof
	}
	results, _ := parallel.Map(context.Background(), len(st.GoldenIndices), 0, func(j int) (opened, error) {
		plain, pi := vpke.ProveWithNonce(sk, cts[st.GoldenIndices[j]], st.RangeSize, nonces[j])
		return opened{plain: plain, proof: pi}, nil
	})
	quality := 0
	pf := &Proof{}
	for j, idx := range st.GoldenIndices {
		r := results[j]
		if r.plain.InRange && r.plain.Value == st.GoldenAnswers[j] {
			quality++
			continue
		}
		pf.Wrong = append(pf.Wrong, WrongAnswer{Index: idx, Plain: r.plain, Proof: r.proof})
	}
	return quality, pf, nil
}

// Verify checks that claimedQuality is a sound upper bound on the quality of
// the encrypted answers, per Fig. 3 of the paper: every revealed answer must
// be a distinct golden-standard position, must differ from the ground truth,
// and must carry a valid VPKE proof; the claim is accepted iff
// claimedQuality + #valid revelations ≥ |G|.
func Verify(pk *elgamal.PublicKey, cts []elgamal.Ciphertext, claimedQuality int, pf *Proof, st Statement) bool {
	if pf == nil || st.Validate(len(cts)) != nil {
		return false
	}
	if claimedQuality < 0 || claimedQuality > len(st.GoldenIndices) {
		return false
	}
	// Structural checks (distinctness, golden membership, wrong-vs-truth)
	// are cheap and run first; the VPKE verifications — the dominant cost,
	// a handful of scalar multiplications each — then run on the worker
	// pool in contiguous spans, ONE work unit per worker rather than one
	// per question: per-item dispatch (a goroutine handoff per ~100 µs of
	// work) measurably regressed wall-clock at small worker counts. Bench
	// guard: on a single-core host Workers(0) is 1, every span helper takes
	// the sequential fast path, and BENCH_parallel.json "speedup" columns
	// read 1.0x by construction — that is not a regression. The
	// accept/reject verdict is unchanged: every revelation must verify
	// either way.
	counted, ok := structuralCheck(len(cts), claimedQuality, pf, st)
	if !ok {
		return false
	}
	errInvalid := errors.New("poqoea: invalid revelation")
	verifyOne := func(w WrongAnswer) bool {
		if w.Plain.InRange {
			return vpke.VerifyValue(pk, w.Plain.Value, cts[w.Index], w.Proof)
		}
		return vpke.VerifyElement(pk, w.Plain.Element, cts[w.Index], w.Proof)
	}
	type span struct{ start, end int }
	var spans []span
	parallel.Chunks(len(pf.Wrong), 0, func(_, start, end int) {
		spans = append(spans, span{start, end})
	})
	err := parallel.For(context.Background(), len(spans), len(spans), func(c int) error {
		for i := spans[c].start; i < spans[c].end; i++ {
			if !verifyOne(pf.Wrong[i]) {
				return errInvalid
			}
		}
		return nil
	})
	if err != nil {
		return false
	}
	return counted >= len(st.GoldenIndices)
}

// structuralCheck runs every non-cryptographic check of Fig. 3's verifier
// over a proof's revelations — distinct golden-standard positions, indices
// in range, revealed answers differing from the ground truth — and returns
// the covered count (claimed quality plus revelations). It is shared by
// Verify and VerifyBatch so both enforce identical structure.
func structuralCheck(numCts, claimedQuality int, pf *Proof, st Statement) (int, bool) {
	counted := claimedQuality
	seen := make(map[int]bool, len(pf.Wrong))
	for _, w := range pf.Wrong {
		expect, isGolden := st.expected(w.Index)
		if !isGolden || seen[w.Index] {
			return 0, false
		}
		seen[w.Index] = true
		if w.Index >= numCts {
			return 0, false
		}
		if w.Plain.InRange {
			if w.Plain.Value == expect {
				return 0, false // revealed answer is actually correct
			}
		} else if w.Plain.Element == nil {
			return 0, false
		}
		counted++
	}
	return counted, true
}

// Quality computes the plaintext quality function Quality(a; G, Gs) =
// Σ_{i∈G} [a_i ≡ s_i] (Iverson bracket), the paper's §IV definition. It is
// shared by the ideal functionality, the requester, and tests.
func Quality(answers []int64, st Statement) int {
	q := 0
	for j, idx := range st.GoldenIndices {
		if idx < len(answers) && answers[idx] == st.GoldenAnswers[j] {
			q++
		}
	}
	return q
}

// EncryptAnswers encrypts a full answer vector under pk — the worker-side
// helper used throughout the protocol and tests. Encryption randomness is
// drawn sequentially from rnd (one scalar per question, matching the
// sequential consumption order), then the crypto runs as chunked batch
// encryptions — fixed-base tables for both bases and one batch
// normalization per chunk — so the ciphertext vector is identical to a
// sequential encryption with the same stream.
func EncryptAnswers(pk *elgamal.PublicKey, answers []int64, rnd io.Reader) ([]elgamal.Ciphertext, error) {
	rs := make([]*big.Int, len(answers))
	for i := range answers {
		r, err := group.RandomScalar(pk.Group, rnd)
		if err != nil {
			return nil, fmt.Errorf("poqoea: encrypting answer %d: %w", i, err)
		}
		rs[i] = r
	}
	out := make([]elgamal.Ciphertext, len(answers))
	var firstErr error
	var mu sync.Mutex
	parallel.Chunks(len(answers), 0, func(_, start, end int) {
		cts, err := pk.EncryptBatchWithRandomness(answers[start:end], rs[start:end])
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("poqoea: encrypting answers [%d,%d): %w", start, end, err)
			}
			mu.Unlock()
			return
		}
		copy(out[start:end], cts)
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// ProofSize returns the marshaled size of the proof in bytes for the given
// group — used by the gas model (calldata) and the evaluation harness.
func ProofSize(g group.Group, pf *Proof) int {
	n := 0
	for _, w := range pf.Wrong {
		n += 8     // index
		n += 1 + 8 // in-range flag + value or element below
		if !w.Plain.InRange {
			n += g.ElementLen()
		}
		n += 2*g.ElementLen() + 32 // vpke proof
	}
	return n
}
