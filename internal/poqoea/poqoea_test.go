package poqoea_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/poqoea"
)

// imagenetStatement mirrors the paper's §VI task: 106 binary questions with
// 6 golden standards.
func imagenetStatement() poqoea.Statement {
	return poqoea.Statement{
		GoldenIndices: []int{3, 17, 42, 61, 88, 105},
		GoldenAnswers: []int64{1, 0, 1, 1, 0, 1},
		RangeSize:     2,
	}
}

// answersWithQuality constructs a 106-answer vector whose quality is
// exactly q against imagenetStatement.
func answersWithQuality(st poqoea.Statement, q int, n int) []int64 {
	answers := make([]int64, n)
	for j, idx := range st.GoldenIndices {
		if j < q {
			answers[idx] = st.GoldenAnswers[j]
		} else {
			answers[idx] = 1 - st.GoldenAnswers[j] // flip a binary answer
		}
	}
	return answers
}

func setup(t *testing.T) (*elgamal.PrivateKey, group.Group) {
	t.Helper()
	g := group.TestSchnorr()
	sk, err := elgamal.KeyGen(g, nil)
	if err != nil {
		t.Fatalf("KeyGen: %v", err)
	}
	return sk, g
}

func TestCompletenessAllQualities(t *testing.T) {
	sk, _ := setup(t)
	st := imagenetStatement()
	for q := 0; q <= len(st.GoldenIndices); q++ {
		answers := answersWithQuality(st, q, 106)
		if got := poqoea.Quality(answers, st); got != q {
			t.Fatalf("constructed vector has quality %d, want %d", got, q)
		}
		cts, err := poqoea.EncryptAnswers(&sk.PublicKey, answers, nil)
		if err != nil {
			t.Fatal(err)
		}
		quality, pf, err := poqoea.Prove(sk, cts, st, nil)
		if err != nil {
			t.Fatalf("Prove: %v", err)
		}
		if quality != q {
			t.Errorf("Prove reported quality %d, want %d", quality, q)
		}
		if len(pf.Wrong) != len(st.GoldenIndices)-q {
			t.Errorf("proof has %d revelations, want %d", len(pf.Wrong), len(st.GoldenIndices)-q)
		}
		if !poqoea.Verify(&sk.PublicKey, cts, quality, pf, st) {
			t.Errorf("honest proof for quality %d rejected", q)
		}
	}
}

// Upper-bound soundness: the requester cannot get a claim below the true
// quality accepted (that would underpay the worker).
func TestUpperBoundSoundness(t *testing.T) {
	sk, _ := setup(t)
	st := imagenetStatement()
	trueQuality := 4
	answers := answersWithQuality(st, trueQuality, 106)
	cts, err := poqoea.EncryptAnswers(&sk.PublicKey, answers, nil)
	if err != nil {
		t.Fatal(err)
	}
	quality, pf, err := poqoea.Prove(sk, cts, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if quality != trueQuality {
		t.Fatalf("true quality = %d, want %d", quality, trueQuality)
	}
	// Claiming any χ < trueQuality with the honest proof must fail: there
	// are only |G|−trueQuality wrong answers to reveal.
	for claim := 0; claim < trueQuality; claim++ {
		if poqoea.Verify(&sk.PublicKey, cts, claim, pf, st) {
			t.Errorf("underclaimed quality %d accepted (true %d)", claim, trueQuality)
		}
	}
	// Overclaiming χ > trueQuality verifies (it is an upper bound) — and
	// only ever helps the worker, never hurts them.
	for claim := trueQuality; claim <= len(st.GoldenIndices); claim++ {
		if !poqoea.Verify(&sk.PublicKey, cts, claim, pf, st) {
			t.Errorf("upper bound %d rejected (true %d)", claim, trueQuality)
		}
	}
}

// A cheating requester cannot fabricate a wrong-answer revelation for a
// question the worker answered correctly.
func TestCannotForgeWrongAnswer(t *testing.T) {
	sk, g := setup(t)
	st := imagenetStatement()
	answers := answersWithQuality(st, 6, 106) // all golden answers correct
	cts, err := poqoea.EncryptAnswers(&sk.PublicKey, answers, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, honest, err := poqoea.Prove(sk, cts, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(honest.Wrong) != 0 {
		t.Fatalf("perfect answers produced %d revelations", len(honest.Wrong))
	}
	// Forge: claim question 3 (golden, truth 1, worker answered 1) decrypts
	// to 0, reusing a proof generated for a different ciphertext.
	otherCt, _, err := sk.Encrypt(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	stolen, pi, err := poqoea.Prove(sk, []elgamal.Ciphertext{otherCt}, poqoea.Statement{
		GoldenIndices: []int{0}, GoldenAnswers: []int64{1}, RangeSize: 2,
	}, nil)
	if err != nil || stolen != 0 || len(pi.Wrong) != 1 {
		t.Fatalf("setup for forgery failed: %v %d", err, stolen)
	}
	forged := &poqoea.Proof{Wrong: []poqoea.WrongAnswer{{
		Index: 3,
		Plain: pi.Wrong[0].Plain,
		Proof: pi.Wrong[0].Proof,
	}}}
	if poqoea.Verify(&sk.PublicKey, cts, 5, forged, st) {
		t.Error("forged revelation accepted: worker would be underpaid")
	}
	_ = g
}

func TestRejectMalformedProofs(t *testing.T) {
	sk, _ := setup(t)
	st := imagenetStatement()
	answers := answersWithQuality(st, 3, 106)
	cts, err := poqoea.EncryptAnswers(&sk.PublicKey, answers, nil)
	if err != nil {
		t.Fatal(err)
	}
	quality, pf, err := poqoea.Prove(sk, cts, st, nil)
	if err != nil {
		t.Fatal(err)
	}

	if poqoea.Verify(&sk.PublicKey, cts, quality, nil, st) {
		t.Error("nil proof accepted")
	}
	if poqoea.Verify(&sk.PublicKey, cts, -1, pf, st) {
		t.Error("negative quality accepted")
	}
	if poqoea.Verify(&sk.PublicKey, cts, len(st.GoldenIndices)+1, pf, st) {
		t.Error("quality above |G| accepted")
	}

	// Duplicate revelation indices must be rejected (double counting).
	dup := &poqoea.Proof{Wrong: append(append([]poqoea.WrongAnswer{}, pf.Wrong...), pf.Wrong[0])}
	if poqoea.Verify(&sk.PublicKey, cts, quality-1, dup, st) {
		t.Error("duplicate revelation double-counted")
	}

	// Non-golden index must be rejected.
	bad := &poqoea.Proof{Wrong: append([]poqoea.WrongAnswer{}, pf.Wrong...)}
	bad.Wrong[0].Index = 5 // not a golden index
	if poqoea.Verify(&sk.PublicKey, cts, quality, bad, st) {
		t.Error("non-golden revelation accepted")
	}
}

func TestOutOfRangeAnswerRevealed(t *testing.T) {
	sk, _ := setup(t)
	st := imagenetStatement()
	answers := answersWithQuality(st, 6, 106)
	answers[st.GoldenIndices[0]] = 77 // out of the binary range
	cts, err := poqoea.EncryptAnswers(&sk.PublicKey, answers, nil)
	if err != nil {
		t.Fatal(err)
	}
	quality, pf, err := poqoea.Prove(sk, cts, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if quality != 5 {
		t.Fatalf("quality = %d, want 5 (one out-of-range golden answer)", quality)
	}
	if len(pf.Wrong) != 1 || pf.Wrong[0].Plain.InRange {
		t.Fatalf("expected one out-of-range revelation, got %+v", pf.Wrong)
	}
	if !poqoea.Verify(&sk.PublicKey, cts, quality, pf, st) {
		t.Error("proof with out-of-range revelation rejected")
	}
}

func TestStatementValidation(t *testing.T) {
	cases := []struct {
		name string
		st   poqoea.Statement
		n    int
	}{
		{"empty golden", poqoea.Statement{RangeSize: 2}, 10},
		{"mismatched lengths", poqoea.Statement{GoldenIndices: []int{1}, GoldenAnswers: []int64{0, 1}, RangeSize: 2}, 10},
		{"index out of bounds", poqoea.Statement{GoldenIndices: []int{10}, GoldenAnswers: []int64{0}, RangeSize: 2}, 10},
		{"duplicate index", poqoea.Statement{GoldenIndices: []int{1, 1}, GoldenAnswers: []int64{0, 1}, RangeSize: 2}, 10},
		{"tiny range", poqoea.Statement{GoldenIndices: []int{1}, GoldenAnswers: []int64{0}, RangeSize: 1}, 10},
		{"golden answer out of range", poqoea.Statement{GoldenIndices: []int{1}, GoldenAnswers: []int64{5}, RangeSize: 2}, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.st.Validate(tc.n); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

// Property: for random golden layouts and random answers, Prove's reported
// quality always equals the plaintext Quality function and verifies.
func TestProveMatchesQualityQuick(t *testing.T) {
	sk, _ := setup(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(8)
		numGolden := 1 + rng.Intn(4)
		perm := rng.Perm(n)[:numGolden]
		st := poqoea.Statement{RangeSize: 4}
		for _, idx := range perm {
			st.GoldenIndices = append(st.GoldenIndices, idx)
			st.GoldenAnswers = append(st.GoldenAnswers, int64(rng.Intn(4)))
		}
		answers := make([]int64, n)
		for i := range answers {
			answers[i] = int64(rng.Intn(4))
		}
		cts, err := poqoea.EncryptAnswers(&sk.PublicKey, answers, nil)
		if err != nil {
			return false
		}
		quality, pf, err := poqoea.Prove(sk, cts, st, nil)
		if err != nil {
			return false
		}
		if quality != poqoea.Quality(answers, st) {
			return false
		}
		return poqoea.Verify(&sk.PublicKey, cts, quality, pf, st)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
