package poqoea

import (
	"fmt"
	"io"
	"math/big"

	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/vpke"
)

// Simulate constructs a PoQoEA transcript for the claim "the answers
// encrypted in cts have quality χ" WITHOUT the decryption key — the
// constructive content of the paper's Lemma 1 ("there exists a P.P.T.
// simulator S invoking at most polynomial number of S_VPKE (on input c_i,
// h, and guessed a_i ∈ range \ {s_i}) to simulate all VPKE proofs"). The
// paper's "special" zero-knowledge holds exactly because |G| and |range|
// are small constants, which keeps the simulator's guessing polynomial.
//
// The returned transcript pairs each simulated wrong answer with the
// explicit challenge its VPKE equations verify under; like vpke's
// SimulateProof, it verifies under VerifyWithChallenge but NOT under the
// Fiat–Shamir verifier (the random oracle cannot be programmed by a real
// adversary), which is precisely what tests assert to validate the
// zero-knowledge claim.
type SimulatedTranscript struct {
	// Wrong mirrors Proof.Wrong with simulated revelations.
	Wrong []SimulatedWrongAnswer
}

// SimulatedWrongAnswer is one simulated revelation with its programmed
// challenge.
type SimulatedWrongAnswer struct {
	Index     int
	Plain     elgamal.Plaintext
	Proof     *vpke.Proof
	Challenge *big.Int
}

// Simulate simulates a quality-χ transcript over the first |G|−χ golden
// positions, guessing each revealed "wrong" answer uniformly from
// range \ {s_i}. It requires 0 ≤ χ ≤ |G|.
func Simulate(pk *elgamal.PublicKey, cts []elgamal.Ciphertext, chi int, st Statement, rnd io.Reader) (*SimulatedTranscript, error) {
	if err := st.Validate(len(cts)); err != nil {
		return nil, err
	}
	if chi < 0 || chi > len(st.GoldenIndices) {
		return nil, fmt.Errorf("poqoea: quality %d out of [0,%d]", chi, len(st.GoldenIndices))
	}
	g := pk.Group
	tr := &SimulatedTranscript{}
	for j := 0; j < len(st.GoldenIndices)-chi; j++ {
		idx := st.GoldenIndices[j]
		truth := st.GoldenAnswers[j]
		// Guess a wrong answer: uniform over range \ {s_i}.
		r, err := group.RandomScalar(g, rnd)
		if err != nil {
			return nil, fmt.Errorf("poqoea: simulating: %w", err)
		}
		guess := new(big.Int).Mod(r, big.NewInt(st.RangeSize-1)).Int64()
		if guess >= truth {
			guess++
		}
		gm := g.ScalarBaseMul(big.NewInt(guess))
		pi, c, err := vpke.SimulateProof(pk, gm, cts[idx], rnd)
		if err != nil {
			return nil, fmt.Errorf("poqoea: simulating VPKE for %d: %w", idx, err)
		}
		tr.Wrong = append(tr.Wrong, SimulatedWrongAnswer{
			Index:     idx,
			Plain:     elgamal.Plaintext{InRange: true, Value: guess, Element: gm},
			Proof:     pi,
			Challenge: c,
		})
	}
	return tr, nil
}

// VerifySimulated checks a simulated transcript against its programmed
// challenges (the interactive-verifier view). Real Fiat–Shamir verification
// of the same transcript must fail — callers assert both to validate the
// zero-knowledge property.
func VerifySimulated(pk *elgamal.PublicKey, cts []elgamal.Ciphertext, chi int, tr *SimulatedTranscript, st Statement) bool {
	if tr == nil || st.Validate(len(cts)) != nil {
		return false
	}
	counted := chi
	seen := make(map[int]bool, len(tr.Wrong))
	for _, w := range tr.Wrong {
		expect, isGolden := st.expected(w.Index)
		if !isGolden || seen[w.Index] || w.Index >= len(cts) {
			return false
		}
		seen[w.Index] = true
		if w.Plain.InRange && w.Plain.Value == expect {
			return false
		}
		if !vpke.VerifyWithChallenge(pk, w.Plain.Element, cts[w.Index], w.Proof, w.Challenge) {
			return false
		}
		counted++
	}
	return counted >= len(st.GoldenIndices)
}
