package poqoea_test

import (
	"testing"

	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/poqoea"
	"dragoon/internal/vpke"
)

// TestSimulatorProducesValidTranscripts validates the paper's Lemma 1
// zero-knowledge argument: transcripts for ANY claimed quality are
// producible from public data alone (no decryption key), verify under
// their programmed challenges, and do NOT pass the Fiat–Shamir verifier.
func TestSimulatorProducesValidTranscripts(t *testing.T) {
	g := group.TestSchnorr()
	sk, err := elgamal.KeyGen(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := imagenetStatement()
	answers := answersWithQuality(st, 4, 106) // true quality 4
	cts, err := poqoea.EncryptAnswers(&sk.PublicKey, answers, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The simulator never sees sk: it takes only the public key.
	for chi := 0; chi <= len(st.GoldenIndices); chi++ {
		tr, err := poqoea.Simulate(&sk.PublicKey, cts, chi, st, nil)
		if err != nil {
			t.Fatalf("Simulate(χ=%d): %v", chi, err)
		}
		if len(tr.Wrong) != len(st.GoldenIndices)-chi {
			t.Fatalf("χ=%d: %d simulated revelations", chi, len(tr.Wrong))
		}
		if !poqoea.VerifySimulated(&sk.PublicKey, cts, chi, tr, st) {
			t.Errorf("χ=%d: simulated transcript rejected by its own challenges", chi)
		}
		// Crucially the simulated proofs must NOT verify under the real
		// (Fiat–Shamir) verifier — otherwise the simulator would be a
		// soundness break, not a zero-knowledge argument.
		for _, w := range tr.Wrong {
			if vpke.VerifyElement(&sk.PublicKey, w.Plain.Element, cts[w.Index], w.Proof) {
				t.Errorf("χ=%d: simulated VPKE proof passed Fiat–Shamir", chi)
			}
		}
	}
}

func TestSimulatorRejectsBadQuality(t *testing.T) {
	g := group.TestSchnorr()
	sk, err := elgamal.KeyGen(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := imagenetStatement()
	cts, err := poqoea.EncryptAnswers(&sk.PublicKey, answersWithQuality(st, 3, 106), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := poqoea.Simulate(&sk.PublicKey, cts, -1, st, nil); err == nil {
		t.Error("negative quality accepted")
	}
	if _, err := poqoea.Simulate(&sk.PublicKey, cts, 7, st, nil); err == nil {
		t.Error("quality above |G| accepted")
	}
}

func TestSimulatedGuessesAvoidTruth(t *testing.T) {
	g := group.TestSchnorr()
	sk, err := elgamal.KeyGen(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := imagenetStatement()
	cts, err := poqoea.EncryptAnswers(&sk.PublicKey, answersWithQuality(st, 0, 106), nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		tr, err := poqoea.Simulate(&sk.PublicKey, cts, 0, st, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j, w := range tr.Wrong {
			if w.Plain.Value == st.GoldenAnswers[j] {
				t.Fatal("simulator guessed the golden answer as a wrong answer")
			}
			if w.Plain.Value < 0 || w.Plain.Value >= st.RangeSize {
				t.Fatalf("simulated guess %d out of range", w.Plain.Value)
			}
		}
	}
}
