package protocol

import (
	"math/rand"
	"sync"
	"testing"

	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/task"
)

// TestDecryptTableConcurrent exercises the lazy short-log-table init from
// many goroutines at once — under `go test -race` this pins the sync.Once
// guard: the old unguarded `if r.logTable == nil` write raced when two
// submissions were decrypted concurrently.
func TestDecryptTableConcurrent(t *testing.T) {
	g := group.TestSchnorr()
	rng := rand.New(rand.NewSource(7))
	inst, err := task.Generate(task.GenerateParams{
		ID: "race", N: 4, RangeSize: 40, NumGolden: 2,
		Workers: 2, Threshold: 1, Budget: 100,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := elgamal.KeyGen(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	r := &Requester{sk: sk, inst: inst}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(m int64) {
			defer wg.Done()
			ct, _, err := sk.Encrypt(m, nil)
			if err != nil {
				errs <- err.Error()
				return
			}
			plain := sk.DecryptWith(r.decryptTable(), ct)
			if !plain.InRange || plain.Value != m {
				errs <- "wrong decryption"
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// Every goroutine must have observed the same table.
	if r.logTable == nil || r.decryptTable() != r.logTable {
		t.Fatal("decryptTable did not settle on one table")
	}
}
