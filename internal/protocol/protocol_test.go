package protocol_test

import (
	"math/rand"
	"testing"

	"dragoon/internal/chain"
	"dragoon/internal/contract"
	"dragoon/internal/group"
	"dragoon/internal/ledger"
	"dragoon/internal/protocol"
	"dragoon/internal/swarm"
	"dragoon/internal/task"
)

func smallInstance(t *testing.T) *task.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	inst, err := task.Generate(task.GenerateParams{
		ID: "proto", N: 6, RangeSize: 2, NumGolden: 2,
		Workers: 2, Threshold: 1, Budget: 100,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func setup(t *testing.T) (*chain.Chain, *swarm.Store, *task.Instance, *protocol.Requester) {
	t.Helper()
	inst := smallInstance(t)
	led := ledger.New()
	led.Mint("requester", 1000)
	ch := chain.New(led, nil)
	store := swarm.New()
	req, err := protocol.NewRequester(protocol.RequesterConfig{
		Addr:     "requester",
		Chain:    ch,
		Store:    store,
		Instance: inst,
		Group:    group.TestSchnorr(),
	})
	if err != nil {
		t.Fatalf("NewRequester: %v", err)
	}
	return ch, store, inst, req
}

func TestLaunchPublishesEverything(t *testing.T) {
	ch, store, inst, req := setup(t)
	if err := req.Launch(); err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if _, err := ch.MineRound(); err != nil {
		t.Fatal(err)
	}
	// The publish event must carry decodable parameters.
	var published *contract.PublishMsg
	for _, ev := range ch.Events() {
		if ev.Name == "published" {
			msg, err := contract.UnmarshalPublish(ev.Data)
			if err != nil {
				t.Fatalf("published event: %v", err)
			}
			published = msg
		}
	}
	if published == nil {
		t.Fatal("no published event")
	}
	if published.N != inst.Task.N() || published.Workers != 2 {
		t.Errorf("published params: %+v", published)
	}
	// The questions must be retrievable and integrity-checked via Swarm.
	content, err := store.Get(swarm.Digest(published.QuestionsDigest))
	if err != nil {
		t.Fatalf("swarm content: %v", err)
	}
	qs, err := task.UnmarshalQuestions(content)
	if err != nil || len(qs) != inst.Task.N() {
		t.Fatalf("decoded %d questions, err=%v", len(qs), err)
	}
	// The budget is escrowed.
	if got := ch.Ledger().Escrow(req.ContractID()); got != inst.Task.Budget {
		t.Errorf("escrow = %d", got)
	}
	// Double launch fails.
	if err := req.Launch(); err == nil {
		t.Error("second Launch accepted")
	}
}

func TestWorkerRequiresAnswerFn(t *testing.T) {
	if _, err := protocol.NewWorker(protocol.WorkerConfig{
		Addr: "w", Strategy: protocol.StrategyHonest,
	}); err == nil {
		t.Error("honest worker without AnswerFn accepted")
	}
	if _, err := protocol.NewWorker(protocol.WorkerConfig{
		Addr: "w", Strategy: protocol.StrategyCopyCommit,
	}); err != nil {
		t.Errorf("copy-commit worker rejected: %v", err)
	}
}

func TestWorkerWaitsForPublication(t *testing.T) {
	ch, store, _, req := setup(t)
	w, err := protocol.NewWorker(protocol.WorkerConfig{
		Addr: "w1", Chain: ch, Store: store, Group: group.TestSchnorr(),
		ContractID: req.ContractID(),
		AnswerFn: func(qs []task.Question, rangeSize int64) []int64 {
			return make([]int64, len(qs))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Before publication: stepping must be a no-op, not an error.
	if err := w.Step(); err != nil {
		t.Fatalf("Step before publish: %v", err)
	}
	if len(ch.Receipts()) != 0 {
		t.Error("worker acted before publication")
	}
}

func TestWorkerRejectsWrongSizedBehaviour(t *testing.T) {
	ch, store, _, req := setup(t)
	if err := req.Launch(); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.MineRound(); err != nil {
		t.Fatal(err)
	}
	w, err := protocol.NewWorker(protocol.WorkerConfig{
		Addr: "w1", Chain: ch, Store: store, Group: group.TestSchnorr(),
		ContractID: req.ContractID(),
		AnswerFn: func(qs []task.Question, rangeSize int64) []int64 {
			return []int64{0} // wrong length
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Step(); err == nil {
		t.Error("wrong-length answer vector accepted")
	}
}

func TestRequesterAnswersBeforeRevealEmpty(t *testing.T) {
	ch, _, _, req := setup(t)
	if err := req.Launch(); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.MineRound(); err != nil {
		t.Fatal(err)
	}
	answers, err := req.Answers()
	if err != nil {
		t.Fatalf("Answers: %v", err)
	}
	if len(answers) != 0 {
		t.Errorf("answers before any reveal: %v", answers)
	}
}

func TestRequesterValidation(t *testing.T) {
	inst := smallInstance(t)
	inst.Task.Workers = 0 // invalid
	_, err := protocol.NewRequester(protocol.RequesterConfig{
		Addr: "r", Chain: chain.New(ledger.New(), nil), Store: swarm.New(),
		Instance: inst, Group: group.TestSchnorr(),
	})
	if err == nil {
		t.Error("invalid task accepted")
	}
}
