// Package protocol implements the off-chain halves of Π_hit (Fig. 5): the
// requester client and the worker client. Both are event-driven round
// automata: each clock round they inspect the public chain state (receipts
// and event logs — the only view a real Ethereum client has) and submit the
// transactions the protocol prescribes. The requester additionally manages
// the task's key pair, publishes question content to off-chain storage, and
// generates VPKE/PoQoEA proofs to reject unqualified submissions.
package protocol

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"dragoon/internal/batch"
	"dragoon/internal/chain"
	"dragoon/internal/commit"
	"dragoon/internal/contract"
	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/ledger"
	"dragoon/internal/poqoea"
	"dragoon/internal/swarm"
	"dragoon/internal/task"
	"dragoon/internal/vpke"
)

// RequesterPolicy selects the requester's evaluation behaviour, used to
// exercise both the honest protocol and the misbehaviours the security
// analysis must defeat.
type RequesterPolicy int

// Requester policies.
const (
	// PolicyHonest follows Fig. 5: open the golden standards, reject
	// out-of-range answers with VPKE and below-threshold answers with
	// PoQoEA, stay silent about qualified answers.
	PolicyHonest RequesterPolicy = iota + 1
	// PolicySilent never sends any evaluation message (the "no message
	// from R" branch: everyone revealed gets paid).
	PolicySilent
	// PolicyNoGolden refuses to open the golden-standard commitment, so no
	// rejection is possible and everyone revealed gets paid.
	PolicyNoGolden
	// PolicyFalseReport tries to reject every worker with an underclaimed
	// quality χ = 0 and whatever (insufficient) proof exists — the
	// false-reporting attack; the contract must pay the workers instead.
	PolicyFalseReport
	// PolicyPrematureCancel tries to claw the deposit back by submitting
	// finalize every single round, starting while the commit phase is
	// still open. The contract must revert every premature attempt; the
	// one that finally lands (after the evaluation window) pays every
	// revealed worker, since this requester never rejects anyone.
	PolicyPrematureCancel
	// PolicyGarbledProof rejects every worker with χ = 0 backed by
	// garbled proof bytes (each VPKE proof corrupted after honest
	// generation) — the forged-proof attack. Proof verification must fail
	// on-chain and the contract must pay the workers instead.
	PolicyGarbledProof
	// PolicyWithholdQuestions publishes the task on-chain but never
	// uploads the question content to off-chain storage. Workers cannot
	// verify the content against the on-chain digest, so they never
	// commit; the quota cannot fill, and after the commit deadline the
	// task cancels and refunds the deposit — nobody loses funds.
	PolicyWithholdQuestions
)

// Requester is the off-chain requester client.
type Requester struct {
	Addr chain.Address

	chain chain.Backend
	store *swarm.Store
	rand  io.Reader

	inst         *task.Instance
	sk           *elgamal.PrivateKey
	goldenKey    commit.Key
	contractID   ledger.ContractID
	policy       RequesterPolicy
	commitRounds int

	published       bool
	goldenSent      bool
	evaluationsSent bool
	finalizeSent    bool

	// batchVerify selects the batched round-verification path: revealed
	// submissions are decoded — with per-element well-formedness checks —
	// in one fan-out per submission instead of element by element. Resolved
	// once at construction from the config's tri-state override and the
	// process-wide knob; the decoded vectors (and thus the whole transcript)
	// are identical either way.
	batchVerify bool

	// obs is the requester's incrementally-updated view of its contract's
	// event log (each round folds only the new events).
	obs *viewObserver

	// logTable amortizes short-range decryption across the K·N
	// ciphertexts of a task (lazily built; logTableOnce guards the build so
	// concurrent decryptions race neither on the pointer nor on a
	// half-built table).
	logTableOnce sync.Once
	logTable     *elgamal.ShortLogTable
}

// RequesterConfig configures a requester client.
type RequesterConfig struct {
	Addr chain.Address
	// Chain is the chain surface the client drives — a live *chain.Chain,
	// or a replay backend when a service reconstructs the client's state.
	Chain    chain.Backend
	Store    *swarm.Store
	Instance *task.Instance
	Policy   RequesterPolicy
	Group    group.Group
	// Key optionally reuses an existing requester key pair: "Dragoon
	// enables the requester to manage only one private-public key pair
	// throughout all her tasks, because all protocol scripts are
	// simulatable without secret key and therefore leak nothing relevant"
	// (§VI). A fresh pair is generated when nil.
	Key *elgamal.PrivateKey
	// CommitRounds bounds how long the commit phase stays open before the
	// task can be cancelled (default 8 rounds).
	CommitRounds int
	// Rand supplies protocol randomness (crypto/rand if nil).
	Rand io.Reader
	// BatchVerify overrides the process-wide batch-verification knob for
	// this client: > 0 forces the batched submission-decode path on, < 0
	// forces it off, 0 follows batch.Enabled() (dragoon.SetBatchVerify).
	BatchVerify int
}

// NewRequester creates a requester client, generating its ElGamal key pair
// — "the requester [manages] only one private-public key pair throughout
// all her tasks" (§VI).
func NewRequester(cfg RequesterConfig) (*Requester, error) {
	if cfg.Policy == 0 {
		cfg.Policy = PolicyHonest
	}
	if cfg.CommitRounds == 0 {
		cfg.CommitRounds = 8
	}
	if err := cfg.Instance.Task.Validate(); err != nil {
		return nil, fmt.Errorf("protocol: invalid task: %w", err)
	}
	sk := cfg.Key
	if sk == nil {
		var err error
		sk, err = elgamal.KeyGen(cfg.Group, cfg.Rand)
		if err != nil {
			return nil, fmt.Errorf("protocol: requester keygen: %w", err)
		}
	} else if sk.Group.Name() != cfg.Group.Name() {
		return nil, fmt.Errorf("protocol: key over group %q, task over %q",
			sk.Group.Name(), cfg.Group.Name())
	}
	id := ledger.ContractID(cfg.Instance.Task.ID)
	return &Requester{
		Addr:         cfg.Addr,
		chain:        cfg.Chain,
		store:        cfg.Store,
		rand:         cfg.Rand,
		inst:         cfg.Instance,
		sk:           sk,
		contractID:   id,
		policy:       cfg.Policy,
		commitRounds: cfg.CommitRounds,
		batchVerify:  batch.Resolve(cfg.BatchVerify),
		obs:          newViewObserver(cfg.Chain, id),
	}, nil
}

// decode reads a revealed submission through the configured verification
// path (batched or element-by-element; the result is identical).
func (r *Requester) decode(data []byte) ([]elgamal.Ciphertext, error) {
	if r.batchVerify {
		return decodeSubmissionBatched(r.sk.Group, data, r.inst.Task.N())
	}
	return decodeSubmission(r.sk.Group, data, r.inst.Task.N())
}

// ContractID returns the on-chain contract instance this requester drives.
func (r *Requester) ContractID() ledger.ContractID { return r.contractID }

// PublicKey exposes the requester's encryption key (h).
func (r *Requester) PublicKey() *elgamal.PublicKey { return &r.sk.PublicKey }

// Launch deploys the HIT contract and publishes the task: question content
// goes to off-chain storage, only its digest plus the protocol parameters
// and the golden-standard commitment go on-chain, and the budget B is
// frozen (Fig. 5, phase 1).
func (r *Requester) Launch() error {
	if r.published {
		return errors.New("protocol: task already published")
	}
	t := &r.inst.Task
	g := r.sk.Group

	if _, err := r.chain.Deploy(r.contractID, contract.New(g), contract.DeployCodeSize, r.Addr); err != nil {
		return fmt.Errorf("protocol: deploying contract: %w", err)
	}
	var questionsDigest swarm.Digest
	if r.policy == PolicyWithholdQuestions {
		// Commit the digest on-chain but never upload the content: workers
		// can neither fetch nor verify the questions, so they must not
		// commit and the task must eventually cancel.
		questionsDigest = swarm.Address(t.MarshalQuestions())
	} else {
		questionsDigest = r.store.Put(t.MarshalQuestions())
	}

	key, err := commit.NewKey(r.rand)
	if err != nil {
		return fmt.Errorf("protocol: golden commitment key: %w", err)
	}
	r.goldenKey = key
	msg := &contract.PublishMsg{
		N:               t.N(),
		Budget:          t.Budget,
		Workers:         t.Workers,
		RangeSize:       t.RangeSize,
		Threshold:       t.Threshold,
		PubKey:          g.Marshal(r.sk.H),
		CommGolden:      commit.Commit(r.inst.Golden.Marshal(), key),
		QuestionsDigest: questionsDigest,
		CommitRounds:    r.commitRounds,
	}
	if err := r.chain.Submit(&chain.Tx{
		From:     r.Addr,
		Contract: r.contractID,
		Method:   contract.MethodPublish,
		Data:     msg.Marshal(),
	}); err != nil {
		return err
	}
	r.published = true
	return nil
}

// Step advances the requester one clock round (called before each round is
// mined). It inspects the public event log and submits whatever phase-3
// transactions are due.
func (r *Requester) Step() error {
	if !r.published {
		return nil
	}
	view, err := r.obs.refresh()
	if err != nil {
		return err
	}
	round := r.chain.Round()
	if view.publishedParams == nil || view.finalized || view.cancelled {
		return nil
	}

	if r.policy == PolicyPrematureCancel {
		// Hammer finalize every round, starting while the commit phase is
		// still open: every premature attempt must revert, and the one
		// that finally lands settles the task (paying every revealed
		// worker — this requester never rejected anyone).
		return r.chain.Submit(&chain.Tx{
			From:     r.Addr,
			Contract: r.contractID,
			Method:   contract.MethodFinalize,
		})
	}

	// If the commit phase never filled, cancel after its deadline to
	// recover the deposit.
	if view.committedRound < 0 {
		if !r.finalizeSent && round > view.publishedRound+r.commitRounds {
			r.finalizeSent = true
			return r.chain.Submit(&chain.Tx{
				From:     r.Addr,
				Contract: r.contractID,
				Method:   contract.MethodFinalize,
			})
		}
		return nil
	}

	// Enter evaluation once the reveal window is over.
	if round <= view.committedRound+contract.RevealRounds {
		return nil
	}

	if !r.goldenSent {
		r.goldenSent = true
		if r.policy == PolicyNoGolden {
			return nil
		}
		msg := &contract.GoldenMsg{Golden: r.inst.Golden.Marshal(), Key: r.goldenKey}
		return r.chain.Submit(&chain.Tx{
			From:     r.Addr,
			Contract: r.contractID,
			Method:   contract.MethodGolden,
			Data:     msg.Marshal(),
		})
	}

	// Send evaluations only after the golden opening is confirmed on-chain
	// (ordering within a round is adversarial, so the client sequences
	// across rounds).
	if !r.evaluationsSent && view.goldenRevealed {
		r.evaluationsSent = true
		if r.policy != PolicySilent && r.policy != PolicyNoGolden {
			if err := r.evaluateAll(view); err != nil {
				return err
			}
		}
		return nil
	}

	// Finalize after the evaluation window closes.
	evalEnd := view.committedRound + contract.RevealRounds + contract.EvalRounds
	if !r.finalizeSent && round > evalEnd && !view.finalized {
		r.finalizeSent = true
		return r.chain.Submit(&chain.Tx{
			From:     r.Addr,
			Contract: r.contractID,
			Method:   contract.MethodFinalize,
		})
	}
	return nil
}

// evaluateAll decrypts every revealed submission and sends the rejection
// transactions the policy calls for.
func (r *Requester) evaluateAll(view *chainView) error {
	st := r.inst.Golden.Statement(r.inst.Task.RangeSize)
	for _, sub := range view.submissions {
		cts, err := r.decode(sub.data)
		if err != nil {
			return fmt.Errorf("protocol: decoding submission of %s: %w", sub.worker, err)
		}
		switch r.policy {
		case PolicyFalseReport:
			// Underclaim χ=0 with no proof: the contract must treat this
			// as an invalid rejection and pay the worker.
			msg := &contract.EvaluateMsg{Worker: sub.worker, Chi: 0}
			if err := r.submitEval(contract.MethodEvaluate, msg.Marshal()); err != nil {
				return err
			}
			continue
		case PolicyGarbledProof:
			// Underclaim χ=0 backed by honestly-generated but garbled
			// VPKE proofs: on-chain verification must fail and pay the
			// worker.
			if err := r.garbledEvaluate(sub.worker, cts, st); err != nil {
				return err
			}
			continue
		case PolicyHonest:
		default:
			continue
		}

		if idx, plain, pi, found, err := r.findOutOfRange(cts); err != nil {
			return err
		} else if found {
			msg := &contract.OutrangeMsg{
				Worker:  sub.worker,
				QIdx:    idx,
				Ct:      elgamal.MarshalCiphertext(r.sk.Group, cts[idx]),
				Element: r.sk.Group.Marshal(plain.Element),
				Proof:   vpke.MarshalProof(r.sk.Group, pi),
			}
			if err := r.submitEval(contract.MethodOutrange, msg.Marshal()); err != nil {
				return err
			}
			continue
		}

		quality, pf, err := poqoea.Prove(r.sk, cts, st, r.rand)
		if err != nil {
			return fmt.Errorf("protocol: proving quality of %s: %w", sub.worker, err)
		}
		if quality >= r.inst.Task.Threshold {
			continue // qualified: stay silent, the default pays the worker
		}
		msg := &contract.EvaluateMsg{Worker: sub.worker, Chi: quality}
		for _, w := range pf.Wrong {
			entry := contract.WrongEntry{
				QIdx:    w.Index,
				Ct:      elgamal.MarshalCiphertext(r.sk.Group, cts[w.Index]),
				InRange: w.Plain.InRange,
				Value:   w.Plain.Value,
				Proof:   vpke.MarshalProof(r.sk.Group, w.Proof),
			}
			if !w.Plain.InRange {
				entry.Element = r.sk.Group.Marshal(w.Plain.Element)
			}
			msg.Wrong = append(msg.Wrong, entry)
		}
		if err := r.submitEval(contract.MethodEvaluate, msg.Marshal()); err != nil {
			return err
		}
	}
	return nil
}

// garbledEvaluate sends the forged-proof rejection of PolicyGarbledProof:
// a χ=0 claim whose wrong-answer entries carry honestly-generated VPKE
// proofs with their bytes corrupted.
func (r *Requester) garbledEvaluate(worker chain.Address, cts []elgamal.Ciphertext, st poqoea.Statement) error {
	_, pf, err := poqoea.Prove(r.sk, cts, st, r.rand)
	if err != nil {
		return fmt.Errorf("protocol: proving quality of %s: %w", worker, err)
	}
	msg := &contract.EvaluateMsg{Worker: worker, Chi: 0}
	for _, w := range pf.Wrong {
		entry := contract.WrongEntry{
			QIdx:    w.Index,
			Ct:      elgamal.MarshalCiphertext(r.sk.Group, cts[w.Index]),
			InRange: w.Plain.InRange,
			Value:   w.Plain.Value,
			Proof:   vpke.MarshalProof(r.sk.Group, w.Proof),
		}
		if !w.Plain.InRange {
			entry.Element = r.sk.Group.Marshal(w.Plain.Element)
		}
		if len(entry.Proof) > 0 {
			entry.Proof[0] ^= 0xFF // the forgery
		}
		msg.Wrong = append(msg.Wrong, entry)
	}
	return r.submitEval(contract.MethodEvaluate, msg.Marshal())
}

// decryptTable returns the lazily-built short-log table for the task's
// answer range. Safe for concurrent use: the first caller resolves the
// table from the process-wide registry (shared across tasks with the same
// range size), every other caller waits on the Once.
func (r *Requester) decryptTable() *elgamal.ShortLogTable {
	r.logTableOnce.Do(func() {
		r.logTable = elgamal.SharedShortLogTable(r.sk.Group, r.inst.Task.RangeSize)
	})
	return r.logTable
}

// findOutOfRange scans a submission for the first out-of-range answer and
// builds its VPKE opening.
func (r *Requester) findOutOfRange(cts []elgamal.Ciphertext) (int, elgamal.Plaintext, *vpke.Proof, bool, error) {
	table := r.decryptTable()
	for i, ct := range cts {
		plain := r.sk.DecryptWith(table, ct)
		if plain.InRange {
			continue
		}
		plain, pi, err := vpke.Prove(r.sk, ct, r.inst.Task.RangeSize, r.rand)
		if err != nil {
			return 0, elgamal.Plaintext{}, nil, false, fmt.Errorf("protocol: out-of-range proof: %w", err)
		}
		return i, plain, pi, true, nil
	}
	return 0, elgamal.Plaintext{}, nil, false, nil
}

func (r *Requester) submitEval(method string, data []byte) error {
	return r.chain.Submit(&chain.Tx{
		From:     r.Addr,
		Contract: r.contractID,
		Method:   method,
		Data:     data,
	})
}

// Answers decrypts all revealed submissions (the requester's deliverable:
// the crowdsourced data). It returns a map from worker to plaintext answer
// vector.
func (r *Requester) Answers() (map[chain.Address][]int64, error) {
	view, err := r.obs.refresh()
	if err != nil {
		return nil, err
	}
	out := make(map[chain.Address][]int64, len(view.submissions))
	for _, sub := range view.submissions {
		cts, err := r.decode(sub.data)
		if err != nil {
			return nil, err
		}
		table := r.decryptTable()
		answers := make([]int64, len(cts))
		for i, ct := range cts {
			plain := r.sk.DecryptWith(table, ct)
			if plain.InRange {
				answers[i] = plain.Value
			} else {
				answers[i] = -1 // out of range
			}
		}
		out[sub.worker] = answers
	}
	return out, nil
}
