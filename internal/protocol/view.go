package protocol

import (
	"bytes"
	"fmt"

	"dragoon/internal/batch"
	"dragoon/internal/chain"
	"dragoon/internal/contract"
	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/ledger"
)

// submission is a worker's revealed ciphertext vector as read from the
// event log.
type submission struct {
	worker chain.Address
	data   []byte // the raw RevealMsg encoding
}

// chainView is a client's interpretation of the public event log for one
// contract: exactly the information any Ethereum node could extract.
type chainView struct {
	publishedParams *contract.PublishMsg
	publishedRound  int
	committedRound  int // -1 until the K-th commit landed
	submissions     []submission
	goldenRevealed  bool
	goldenData      []byte
	paid            map[chain.Address]bool
	rejected        map[chain.Address]bool
	finalized       bool
	cancelled       bool
}

func newChainView() *chainView {
	return &chainView{
		committedRound: -1,
		paid:           make(map[chain.Address]bool),
		rejected:       make(map[chain.Address]bool),
	}
}

// apply folds one contract event into the view. Events are append-only, so
// a view fed each event exactly once — in any number of batches — equals a
// view built from the full log.
func (v *chainView) apply(ev chain.Event) {
	switch ev.Name {
	case "published":
		if msg, err := contract.UnmarshalPublish(ev.Data); err == nil {
			v.publishedParams = msg
			v.publishedRound = ev.Round
		}
	case "committed":
		v.committedRound = ev.Round
	case "revealed":
		if i := bytes.IndexByte(ev.Data, 0); i > 0 {
			v.submissions = append(v.submissions, submission{
				worker: chain.Address(ev.Data[:i]),
				data:   ev.Data[i+1:],
			})
		}
	case "goldenrevealed":
		v.goldenRevealed = true
		v.goldenData = ev.Data
	case "paid":
		v.paid[chain.Address(ev.Data)] = true
	case "rejected":
		if i := bytes.IndexByte(ev.Data, 0); i > 0 {
			v.rejected[chain.Address(ev.Data[:i])] = true
		}
	case "finalized":
		v.finalized = true
	case "cancelled":
		v.cancelled = true
	}
}

// viewObserver is a client's persistent, incrementally-updated view of one
// contract: a chainView plus the event cursor that feeds it. Each refresh
// folds only the events emitted since the previous refresh, so a client
// polling every round pays O(new events) per round instead of rescanning
// the global event log (which, with many contracts on a shared chain, grows
// with everyone else's traffic too).
type viewObserver struct {
	view   *chainView
	cursor chain.EventCursor
}

func newViewObserver(b chain.Backend, id ledger.ContractID) *viewObserver {
	o := &viewObserver{view: newChainView()}
	// Clients may be constructed before they are wired to a chain (config
	// validation tests do); the cursor is what panics on use, as before.
	if b != nil {
		o.cursor = b.EventCursor(id)
	}
	return o
}

// refresh drains the cursor into the view and returns it. It fails with
// chain.ErrPruned (wrapped) if the contract's event log was pruned beneath
// the cursor — the view can no longer be kept consistent.
func (o *viewObserver) refresh() (*chainView, error) {
	evs, err := o.cursor.Poll()
	if err != nil {
		return nil, err
	}
	for _, ev := range evs {
		o.view.apply(ev)
	}
	return o.view, nil
}

// decodeSubmission decodes a revealed event payload into ciphertexts,
// validating the well-formedness (group membership) of every element one by
// one.
func decodeSubmission(g group.Group, data []byte, n int) ([]elgamal.Ciphertext, error) {
	msg, err := parseSubmission(data, n)
	if err != nil {
		return nil, err
	}
	cts := make([]elgamal.Ciphertext, n)
	for i, raw := range msg.Cts {
		if cts[i], err = elgamal.UnmarshalCiphertext(g, raw); err != nil {
			return nil, fmt.Errorf("protocol: ciphertext %d: %w", i, err)
		}
	}
	return cts, nil
}

// decodeSubmissionBatched is decodeSubmission with the element
// well-formedness checks fanned out over the work pool in one batched call
// (batch.DecodeCiphertexts) — the requester's round verification of a
// revealed submission when batching is enabled. The decoded vector is
// identical to the sequential path; on failure the lowest offending index's
// error is returned, as a sequential scan would.
func decodeSubmissionBatched(g group.Group, data []byte, n int) ([]elgamal.Ciphertext, error) {
	msg, err := parseSubmission(data, n)
	if err != nil {
		return nil, err
	}
	cts, err := batch.DecodeCiphertexts(g, msg.Cts)
	if err != nil {
		return nil, fmt.Errorf("protocol: %w", err)
	}
	return cts, nil
}

// parseSubmission unwraps a revealed event payload and checks the vector
// length.
func parseSubmission(data []byte, n int) (*contract.RevealMsg, error) {
	msg, err := contract.UnmarshalReveal(data)
	if err != nil {
		return nil, err
	}
	if len(msg.Cts) != n {
		return nil, fmt.Errorf("protocol: submission has %d ciphertexts, want %d", len(msg.Cts), n)
	}
	return msg, nil
}
