package protocol

import (
	"errors"
	"fmt"
	"io"

	"dragoon/internal/chain"
	"dragoon/internal/commit"
	"dragoon/internal/contract"
	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/ledger"
	"dragoon/internal/swarm"
	"dragoon/internal/task"
)

// AnswerFn produces a worker's answer vector once the task content is
// known. Worker behaviour models (package worker) provide implementations.
type AnswerFn func(questions []task.Question, rangeSize int64) []int64

// WorkerStrategy tweaks a worker client's protocol behaviour to exercise
// attacks and failure modes.
type WorkerStrategy int

// Worker strategies.
const (
	// StrategyHonest follows Fig. 5: commit, then reveal.
	StrategyHonest WorkerStrategy = iota + 1
	// StrategyNoReveal commits but never opens (c_j = ⊥: no payment, the
	// worker's share returns to the requester).
	StrategyNoReveal
	// StrategyCopyCommit is the free-riding attack the paper's
	// confidentiality requirement defends against: the worker watches the
	// chain and re-submits the first answer commitment it sees. The
	// contract must reject the duplicate, and the underlying ciphertexts
	// are unreadable, so there is nothing useful to copy anyway.
	StrategyCopyCommit
)

// Worker is the off-chain worker client.
type Worker struct {
	Addr chain.Address

	chain *chain.Chain
	store *swarm.Store
	g     group.Group
	rand  io.Reader

	contractID ledger.ContractID
	strategy   WorkerStrategy
	answerFn   AnswerFn

	committed bool
	revealed  bool
	reveal    *contract.RevealMsg
}

// WorkerConfig configures a worker client.
type WorkerConfig struct {
	Addr       chain.Address
	Chain      *chain.Chain
	Store      *swarm.Store
	Group      group.Group
	ContractID ledger.ContractID
	Strategy   WorkerStrategy
	// AnswerFn decides the answers (required unless the strategy never
	// answers).
	AnswerFn AnswerFn
	// Rand supplies protocol randomness (crypto/rand if nil).
	Rand io.Reader
}

// NewWorker creates a worker client.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Strategy == 0 {
		cfg.Strategy = StrategyHonest
	}
	if cfg.AnswerFn == nil && cfg.Strategy != StrategyCopyCommit {
		return nil, errors.New("protocol: worker needs an AnswerFn")
	}
	return &Worker{
		Addr:       cfg.Addr,
		chain:      cfg.Chain,
		store:      cfg.Store,
		g:          cfg.Group,
		rand:       cfg.Rand,
		contractID: cfg.ContractID,
		strategy:   cfg.Strategy,
		answerFn:   cfg.AnswerFn,
	}, nil
}

// Step advances the worker one clock round.
func (w *Worker) Step() error {
	view := observe(w.chain, w.contractID)
	if view.publishedParams == nil {
		return nil
	}
	if !w.committed {
		return w.doCommit(view)
	}
	if !w.revealed && view.committedRound >= 0 && w.reveal != nil {
		round := w.chain.Round()
		if round > view.committedRound+contract.RevealRounds {
			return nil // window missed
		}
		w.revealed = true
		w.chain.Submit(&chain.Tx{
			From:     w.Addr,
			Contract: w.contractID,
			Method:   contract.MethodReveal,
			Data:     w.reveal.Marshal(),
		})
	}
	return nil
}

// doCommit runs phase 2-a: fetch the task content, verify it against the
// on-chain digest, answer, encrypt, and commit.
func (w *Worker) doCommit(view *chainView) error {
	params := view.publishedParams

	if w.strategy == StrategyCopyCommit {
		// Copy the first commitment observed in any earlier transaction.
		for _, rcpt := range w.chain.Receipts() {
			if rcpt.Tx.Contract != w.contractID || rcpt.Tx.Method != contract.MethodCommit {
				continue
			}
			if rcpt.Tx.From == w.Addr || rcpt.Reverted() {
				continue
			}
			w.committed = true
			w.chain.Submit(&chain.Tx{
				From:     w.Addr,
				Contract: w.contractID,
				Method:   contract.MethodCommit,
				Data:     rcpt.Tx.Data, // byte-identical copy
			})
			return nil
		}
		return nil // nothing to copy yet; stay in commit phase
	}

	// Fetch and integrity-check the question content from off-chain
	// storage (the digest was committed on-chain at publish).
	content, err := w.store.Get(swarm.Digest(params.QuestionsDigest))
	if err != nil {
		return fmt.Errorf("protocol: fetching task content: %w", err)
	}
	questions, err := task.UnmarshalQuestions(content)
	if err != nil {
		return fmt.Errorf("protocol: decoding task content: %w", err)
	}
	if len(questions) != params.N {
		return fmt.Errorf("protocol: content has %d questions, chain says %d", len(questions), params.N)
	}

	answers := w.answerFn(questions, params.RangeSize)
	if len(answers) != params.N {
		return fmt.Errorf("protocol: behaviour produced %d answers, want %d", len(answers), params.N)
	}
	h, err := w.g.Unmarshal(params.PubKey)
	if err != nil {
		return fmt.Errorf("protocol: requester key: %w", err)
	}
	pk := &elgamal.PublicKey{Group: w.g, H: h}

	cts := make([][]byte, params.N)
	for i, a := range answers {
		ct, _, err := pk.Encrypt(a, w.rand)
		if err != nil {
			return fmt.Errorf("protocol: encrypting answer %d: %w", i, err)
		}
		cts[i] = elgamal.MarshalCiphertext(w.g, ct)
	}
	key, err := commit.NewKey(w.rand)
	if err != nil {
		return fmt.Errorf("protocol: commitment key: %w", err)
	}
	reveal := &contract.RevealMsg{Cts: cts, Key: key}
	comm := commit.Commit(reveal.CommitmentPayload(), key)

	w.committed = true
	if w.strategy != StrategyNoReveal {
		w.reveal = reveal
	}
	msg := &contract.CommitMsg{Comm: comm}
	w.chain.Submit(&chain.Tx{
		From:     w.Addr,
		Contract: w.contractID,
		Method:   contract.MethodCommit,
		Data:     msg.Marshal(),
	})
	return nil
}
