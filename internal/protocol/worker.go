package protocol

import (
	"errors"
	"fmt"
	"io"

	"dragoon/internal/chain"
	"dragoon/internal/commit"
	"dragoon/internal/contract"
	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/incentive"
	"dragoon/internal/ledger"
	"dragoon/internal/poqoea"
	"dragoon/internal/swarm"
	"dragoon/internal/task"
)

// AnswerFn produces a worker's answer vector once the task content is
// known. Worker behaviour models (package worker) provide implementations.
type AnswerFn func(questions []task.Question, rangeSize int64) []int64

// WorkerStrategy tweaks a worker client's protocol behaviour to exercise
// attacks and failure modes.
type WorkerStrategy int

// Worker strategies.
const (
	// StrategyHonest follows Fig. 5: commit, then reveal.
	StrategyHonest WorkerStrategy = iota + 1
	// StrategyNoReveal commits but never opens (c_j = ⊥: no payment, the
	// worker's share returns to the requester).
	StrategyNoReveal
	// StrategyCopyCommit is the free-riding attack the paper's
	// confidentiality requirement defends against: the worker watches the
	// chain and re-submits the first answer commitment it sees. The
	// contract must reject the duplicate, and the underlying ciphertexts
	// are unreadable, so there is nothing useful to copy anyway.
	StrategyCopyCommit
	// StrategyGarbledReveal commits honestly but opens with a garbled
	// ciphertext vector (one byte flipped), so Open(comm, c', key) fails:
	// the commitment binding must reject the opening on-chain and the
	// worker ends unrevealed and unpaid.
	StrategyGarbledReveal
	// StrategyReplayReveal commits honestly but, instead of opening its own
	// commitment, replays the first reveal transcript another worker
	// landed on-chain — the transcript-replay attack. The replayed payload
	// cannot open this worker's commitment, so the reveal must revert.
	StrategyReplayReveal
	// StrategyEquivocate lands two different commitments in the same round
	// (the double-commit equivocation). The contract must accept exactly
	// one; the worker keeps the opening of the FIRST it sent, so under an
	// honest schedule it behaves like an honest worker, while a reordering
	// adversary can make the other commitment win and strand the opening.
	StrategyEquivocate
	// StrategyLateCommit waits until the last round of the commit window
	// and lands its commitment exactly on the phase boundary. Any
	// adversarial one-round delay pushes it past the deadline and the
	// commit reverts.
	StrategyLateCommit
	// StrategyRational plays the paper's rational worker: when it first
	// observes the task's posted terms (reward B/K, threshold Θ, option
	// range) it computes the expected utility of honest effort, zero-effort
	// guessing and abstention under its private economic profile
	// (accuracy, costs, knowledge of |G|) and follows the maximizing
	// action for the rest of the run — committing its honest stream, its
	// guess stream, or nothing at all. Requires WorkerConfig.Rational.
	StrategyRational
	// StrategyCollude marks one member of a collusion ring: protocol
	// mechanics stay honest (own commitment, own encryption, own reveal)
	// but the plaintext answer stream is produced once and shared by the
	// whole ring (see package worker's CollusionRing), so the coalition
	// spends the answering effort once and splits the payoff. The
	// golden-standard audit grades every member by that one stream, which
	// is what makes effort-skipping rings unprofitable.
	StrategyCollude
	// StrategySybil marks one address of a sybil principal: a single
	// actor enrolling under many chain addresses, each submitting the same
	// shared answer stream under its own commitment (see package worker's
	// SybilSwarm). Per-address enrollment multiplies the principal's
	// submission costs, not its audit odds.
	StrategySybil
)

// RationalProfile is a rational worker's private economic type: what
// honest effort costs it, what accuracy that effort buys, the fixed cost
// of participating at all, and its knowledge of the golden-standard count
// (|G| is posted with the off-chain task description; the on-chain publish
// hides it inside the golden commitment).
type RationalProfile struct {
	// Accuracy is the per-question correctness probability honest effort
	// achieves.
	Accuracy float64
	// EffortCost is the cost of answering at that accuracy.
	EffortCost float64
	// SubmitCost is the fixed participation cost (commit + reveal gas), in
	// the same unit as the reward.
	SubmitCost float64
	// NumGolden is the worker's belief about |G|. Zero falls back to the
	// posted threshold Θ (the smallest |G| consistent with the contract).
	NumGolden int
}

// Params assembles the incentive environment the profile faces under a
// task's posted terms.
func (rp RationalProfile) Params(published *contract.PublishMsg) incentive.Params {
	g := rp.NumGolden
	if g == 0 {
		g = published.Threshold
	}
	return incentive.Params{
		NumGolden:  g,
		Threshold:  published.Threshold,
		RangeSize:  published.RangeSize,
		Reward:     float64(contract.RewardOf(published)),
		SubmitCost: rp.SubmitCost,
	}
}

// RationalBehaviour equips a rational worker with its economic profile and
// the two answer streams it can play.
type RationalBehaviour struct {
	// Profile is the worker's private economic type.
	Profile RationalProfile
	// Honest produces the effortful answers (accuracy Profile.Accuracy).
	Honest AnswerFn
	// Guess produces the zero-effort answers (uniform guessing).
	Guess AnswerFn
}

// Worker is the off-chain worker client.
type Worker struct {
	Addr chain.Address

	chain chain.Backend
	store *swarm.Store
	g     group.Group
	rand  io.Reader

	contractID ledger.ContractID
	strategy   WorkerStrategy
	answerFn   AnswerFn

	// rational holds the economic behaviour of a StrategyRational worker;
	// choice/decided latch its one-time utility-maximizing decision, made
	// when the posted terms are first observed.
	rational *RationalBehaviour
	choice   incentive.Choice
	decided  bool

	committed bool
	revealed  bool
	reveal    *contract.RevealMsg

	// obs is the worker's incrementally-updated view of its contract's
	// event log. It is refreshed from Prepare and StepTxs only; harnesses
	// running many workers' StepTxs concurrently give each worker its own
	// observer, so no cursor is ever shared across goroutines.
	obs *viewObserver

	// preparedAnswers holds the answer vector resolved by Prepare, consumed
	// by the next commit attempt.
	preparedAnswers []int64
}

// WorkerConfig configures a worker client.
type WorkerConfig struct {
	Addr chain.Address
	// Chain is the chain surface the client drives — a live *chain.Chain,
	// or a replay backend when a service reconstructs the client's state.
	Chain      chain.Backend
	Store      *swarm.Store
	Group      group.Group
	ContractID ledger.ContractID
	Strategy   WorkerStrategy
	// AnswerFn decides the answers (required unless the strategy never
	// answers, or is rational — see Rational).
	AnswerFn AnswerFn
	// Rational supplies a StrategyRational worker's profile and answer
	// streams (required for, and only consulted by, that strategy).
	Rational *RationalBehaviour
	// Rand supplies protocol randomness (crypto/rand if nil).
	Rand io.Reader
}

// NewWorker creates a worker client.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Strategy == 0 {
		cfg.Strategy = StrategyHonest
	}
	if cfg.Strategy == StrategyRational {
		if cfg.Rational == nil || cfg.Rational.Honest == nil || cfg.Rational.Guess == nil {
			return nil, errors.New("protocol: rational worker needs a RationalBehaviour with both answer streams")
		}
	} else if cfg.AnswerFn == nil && cfg.Strategy != StrategyCopyCommit {
		return nil, errors.New("protocol: worker needs an AnswerFn")
	}
	return &Worker{
		Addr:       cfg.Addr,
		chain:      cfg.Chain,
		store:      cfg.Store,
		g:          cfg.Group,
		rand:       cfg.Rand,
		contractID: cfg.ContractID,
		strategy:   cfg.Strategy,
		answerFn:   cfg.AnswerFn,
		rational:   cfg.Rational,
		obs:        newViewObserver(cfg.Chain, cfg.ContractID),
	}, nil
}

// Step advances the worker one clock round, submitting whatever
// transactions are due straight to the chain.
func (w *Worker) Step() error {
	txs, err := w.StepTxs()
	if err != nil {
		return err
	}
	for _, tx := range txs {
		if err := w.chain.Submit(tx); err != nil {
			return err
		}
	}
	return nil
}

// Prepare resolves the worker's plaintext answers ahead of its commit, if
// one is due. It exists for harnesses that run many workers' StepTxs
// concurrently: answer models may share a single seeded rng across workers
// (package worker documents reproducibility given a seeded rng), so the
// rng-consuming answering step must run sequentially in worker order —
// call Prepare on each worker in order, then fan out StepTxs, which picks up
// the prepared vector and performs only per-worker crypto. Prepare is
// optional: an unprepared StepTxs resolves the answers itself.
func (w *Worker) Prepare() error {
	if w.committed || w.preparedAnswers != nil || w.strategy == StrategyCopyCommit {
		return nil
	}
	if w.strategy != StrategyRational && w.answerFn == nil {
		return nil
	}
	view, err := w.obs.refresh()
	if err != nil {
		return err
	}
	if view.publishedParams == nil {
		return nil
	}
	fn := w.answerFn
	if w.strategy == StrategyRational {
		if fn = w.rationalAnswerFn(view.publishedParams); fn == nil {
			return nil // the utility calculus says abstain
		}
	}
	questions, err := w.fetchQuestions(view.publishedParams)
	if err != nil {
		// The content is not (yet) in off-chain storage, or fails its
		// integrity check against the on-chain digest — e.g. a requester
		// withholding publication. A real worker waits and retries; it
		// never commits to questions it could not verify.
		return nil
	}
	w.preparedAnswers = fn(questions, view.publishedParams.RangeSize)
	return nil
}

// rationalAnswerFn latches the rational worker's one-time decision under
// the posted terms and returns the answer stream it plays (nil when it
// abstains). The decision is pure arithmetic over on-chain terms and the
// private profile, so every harness — and every parallelism level —
// computes the same choice at the same observation point.
func (w *Worker) rationalAnswerFn(params *contract.PublishMsg) AnswerFn {
	if !w.decided {
		p := w.rational.Profile.Params(params)
		w.choice = incentive.Decide(p, w.rational.Profile.Accuracy, w.rational.Profile.EffortCost)
		w.decided = true
	}
	switch w.choice {
	case incentive.ChoiceGuess:
		return w.rational.Guess
	case incentive.ChoiceHonest:
		return w.rational.Honest
	default:
		return nil
	}
}

// StepTxs advances the worker one clock round and returns the transactions
// it wants mined, without submitting them. The split lets the simulation
// harness run every worker's off-chain computation (answering, encrypting,
// committing) concurrently and then submit the returned transactions in a
// fixed worker order, keeping the chain's transaction stream — and therefore
// the whole run — deterministic. StepTxs only reads mined chain state
// (receipts and events), never the mempool, so workers observe identical
// views regardless of execution order within a round.
func (w *Worker) StepTxs() ([]*chain.Tx, error) {
	view, err := w.obs.refresh()
	if err != nil {
		return nil, err
	}
	if view.publishedParams == nil {
		return nil, nil
	}
	if !w.committed {
		return w.commitTxs(view)
	}
	if !w.revealed && view.committedRound >= 0 {
		round := w.chain.Round()
		if round > view.committedRound+contract.RevealRounds {
			return nil, nil // window missed
		}
		if w.strategy == StrategyReplayReveal {
			// Replay the first reveal transcript another worker landed
			// on-chain, byte for byte. It cannot open this worker's own
			// commitment, so the contract must revert it.
			for _, sub := range view.submissions {
				if sub.worker == w.Addr {
					continue
				}
				w.revealed = true
				return []*chain.Tx{{
					From:     w.Addr,
					Contract: w.contractID,
					Method:   contract.MethodReveal,
					Data:     sub.data,
				}}, nil
			}
			return nil, nil // nothing to replay yet; keep watching
		}
		if w.reveal != nil {
			w.revealed = true
			return []*chain.Tx{{
				From:     w.Addr,
				Contract: w.contractID,
				Method:   contract.MethodReveal,
				Data:     w.reveal.Marshal(),
			}}, nil
		}
	}
	return nil, nil
}

// commitTxs runs phase 2-a: fetch the task content, verify it against the
// on-chain digest, answer, encrypt, and commit.
func (w *Worker) commitTxs(view *chainView) ([]*chain.Tx, error) {
	params := view.publishedParams

	if w.strategy == StrategyCopyCommit {
		// Copy the first commitment observed in any earlier transaction.
		for _, rcpt := range w.chain.Receipts() {
			if rcpt.Tx.Contract != w.contractID || rcpt.Tx.Method != contract.MethodCommit {
				continue
			}
			if rcpt.Tx.From == w.Addr || rcpt.Reverted() {
				continue
			}
			w.committed = true
			return []*chain.Tx{{
				From:     w.Addr,
				Contract: w.contractID,
				Method:   contract.MethodCommit,
				Data:     rcpt.Tx.Data, // byte-identical copy
			}}, nil
		}
		return nil, nil // nothing to copy yet; stay in commit phase
	}

	if w.strategy == StrategyLateCommit &&
		w.chain.Round() < view.publishedRound+params.CommitRounds {
		// Wait for the last admissible round: the commit lands exactly on
		// the phase boundary (any one-round delay pushes it past the
		// deadline and it reverts).
		return nil, nil
	}

	fn := w.answerFn
	if w.strategy == StrategyRational {
		if fn = w.rationalAnswerFn(params); fn == nil {
			// Abstain: negative expected utility at the posted reward, so
			// the rational worker never commits (and, if the quota depends
			// on it, the task starves and cancels).
			return nil, nil
		}
	}
	answers := w.preparedAnswers
	w.preparedAnswers = nil
	if answers == nil {
		questions, err := w.fetchQuestions(params)
		if err != nil {
			// Content unavailable or failing its integrity check: wait and
			// retry next round rather than committing blind (see Prepare).
			return nil, nil
		}
		answers = fn(questions, params.RangeSize)
	}
	if len(answers) != params.N {
		return nil, fmt.Errorf("protocol: behaviour produced %d answers, want %d", len(answers), params.N)
	}
	h, err := w.g.Unmarshal(params.PubKey)
	if err != nil {
		return nil, fmt.Errorf("protocol: requester key: %w", err)
	}
	pk := &elgamal.PublicKey{Group: w.g, H: h}

	// Per-question parallel encryption (randomness drawn sequentially from
	// this worker's private stream inside EncryptAnswers).
	encrypted, err := poqoea.EncryptAnswers(pk, answers, w.rand)
	if err != nil {
		return nil, fmt.Errorf("protocol: encrypting answers: %w", err)
	}
	cts := make([][]byte, params.N)
	for i, ct := range encrypted {
		cts[i] = elgamal.MarshalCiphertext(w.g, ct)
	}
	key, err := commit.NewKey(w.rand)
	if err != nil {
		return nil, fmt.Errorf("protocol: commitment key: %w", err)
	}
	reveal := &contract.RevealMsg{Cts: cts, Key: key}
	comm := commit.Commit(reveal.CommitmentPayload(), key)

	w.committed = true
	switch w.strategy {
	case StrategyNoReveal, StrategyReplayReveal:
		// Never opens its own commitment (the replayer opens someone
		// else's transcript instead — see StepTxs).
	case StrategyGarbledReveal:
		// Keep an opening whose first ciphertext byte is flipped: the
		// commitment was computed over the honest payload, so the on-chain
		// Open must fail and the reveal reverts.
		garbled := make([][]byte, len(reveal.Cts))
		for i, ct := range reveal.Cts {
			garbled[i] = append([]byte{}, ct...)
		}
		garbled[0][0] ^= 0xFF
		w.reveal = &contract.RevealMsg{Cts: garbled, Key: reveal.Key}
	default:
		w.reveal = reveal
	}
	msg := &contract.CommitMsg{Comm: comm}
	txs := []*chain.Tx{{
		From:     w.Addr,
		Contract: w.contractID,
		Method:   contract.MethodCommit,
		Data:     msg.Marshal(),
	}}
	if w.strategy == StrategyEquivocate {
		// The double-commit equivocation: a second, different commitment
		// to the same payload (fresh blinding key) lands in the same
		// round. The contract must accept exactly one; the kept opening
		// matches the first, so a reordering adversary deciding the race
		// can strand it.
		key2, err := commit.NewKey(w.rand)
		if err != nil {
			return nil, fmt.Errorf("protocol: second commitment key: %w", err)
		}
		msg2 := &contract.CommitMsg{Comm: commit.Commit(reveal.CommitmentPayload(), key2)}
		txs = append(txs, &chain.Tx{
			From:     w.Addr,
			Contract: w.contractID,
			Method:   contract.MethodCommit,
			Data:     msg2.Marshal(),
		})
	}
	return txs, nil
}

// fetchQuestions retrieves the task content from off-chain storage and
// integrity-checks it against the on-chain digest committed at publish.
func (w *Worker) fetchQuestions(params *contract.PublishMsg) ([]task.Question, error) {
	content, err := w.store.Get(swarm.Digest(params.QuestionsDigest))
	if err != nil {
		return nil, fmt.Errorf("protocol: fetching task content: %w", err)
	}
	questions, err := task.UnmarshalQuestions(content)
	if err != nil {
		return nil, fmt.Errorf("protocol: decoding task content: %w", err)
	}
	if len(questions) != params.N {
		return nil, fmt.Errorf("protocol: content has %d questions, chain says %d", len(questions), params.N)
	}
	return questions, nil
}
