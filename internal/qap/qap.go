// Package qap reduces rank-1 constraint systems to quadratic arithmetic
// programs over a radix-2 evaluation domain, supplying the two operations
// Groth16 needs:
//
//   - EvalAtTau: the trusted setup's evaluation of every wire polynomial
//     u_i, v_i, w_i at the toxic point τ, via Lagrange-basis evaluation;
//   - QuotientCoeffs: the prover's computation of h(x) =
//     (A(x)·B(x) − C(x)) / Z(x) using coset NTTs, where Z is the domain's
//     vanishing polynomial.
package qap

import (
	"context"
	"fmt"
	"math/big"

	"dragoon/internal/ff"
	"dragoon/internal/parallel"
	"dragoon/internal/r1cs"
)

// QAP binds a constraint system to an evaluation domain of size ≥ the
// number of constraints.
type QAP struct {
	CS     *r1cs.System
	Domain *ff.Domain
}

// New builds a QAP over the smallest power-of-two domain covering the
// system's constraints.
func New(cs *r1cs.System) (*QAP, error) {
	n := 2
	for n < cs.NumConstraints() {
		n <<= 1
	}
	d, err := ff.NewDomain(cs.Field(), n)
	if err != nil {
		return nil, fmt.Errorf("qap: %w", err)
	}
	return &QAP{CS: cs, Domain: d}, nil
}

// WireEvals holds u_i(τ), v_i(τ), w_i(τ) for every wire i.
type WireEvals struct {
	U, V, W []*big.Int
	// ZTau is Z(τ) = τ^N − 1.
	ZTau *big.Int
}

// EvalAtTau evaluates all wire polynomials at τ. The wire polynomial u_i is
// defined by u_i(ω^j) = (coefficient of wire i in constraint j's A), so
// u_i(τ) = Σ_j A[j][i]·L_j(τ) with the Lagrange basis
// L_j(τ) = Z(τ)·ω^j / (N·(τ − ω^j)). The computation is sparse in the
// constraints, costing O(Σ|constraint|) field operations after the O(N)
// Lagrange precomputation.
func (q *QAP) EvalAtTau(tau *big.Int) (*WireEvals, error) {
	f := q.CS.Field()
	n := q.Domain.N

	// Precompute L_j(τ) for all j.
	zTau := f.Sub(f.Exp(tau, big.NewInt(int64(n))), f.One())
	if zTau.Sign() == 0 {
		return nil, fmt.Errorf("qap: τ lies on the evaluation domain")
	}
	nInv := f.Inv(big.NewInt(int64(n)))
	w := q.Domain.Generator()
	lag := make([]*big.Int, n)
	wj := f.One()
	for j := 0; j < n; j++ {
		den := f.Inv(f.Sub(tau, wj))
		lag[j] = f.Mul(f.Mul(zTau, nInv), f.Mul(wj, den))
		wj = f.Mul(wj, w)
	}

	m := q.CS.NumVariables()
	ev := &WireEvals{
		U:    zeros(m),
		V:    zeros(m),
		W:    zeros(m),
		ZTau: zTau,
	}
	for j, c := range q.CS.Constraints() {
		for _, t := range c.A {
			ev.U[t.Var] = f.Add(ev.U[t.Var], f.Mul(f.Reduce(t.Coeff), lag[j]))
		}
		for _, t := range c.B {
			ev.V[t.Var] = f.Add(ev.V[t.Var], f.Mul(f.Reduce(t.Coeff), lag[j]))
		}
		for _, t := range c.C {
			ev.W[t.Var] = f.Add(ev.W[t.Var], f.Mul(f.Reduce(t.Coeff), lag[j]))
		}
	}
	return ev, nil
}

// QuotientCoeffs computes the coefficients of
// h(x) = (A(x)·B(x) − C(x)) / Z(x) for a satisfying witness, where
// A(x) = Σ_i z_i·u_i(x) etc. The result has degree ≤ N−2 (N coefficients
// with the last equal to zero for a satisfying witness).
func (q *QAP) QuotientCoeffs(witness r1cs.Witness) ([]*big.Int, error) {
	f := q.CS.Field()
	n := q.Domain.N

	// Evaluations of A, B, C on the domain come directly from the
	// constraints: A(ω^j) = ⟨A_j, z⟩. Constraints are independent, so the
	// sparse dot products run on the worker pool.
	aEv, bEv, cEv := zeros(n), zeros(n), zeros(n)
	constraints := q.CS.Constraints()
	_ = parallel.For(context.Background(), len(constraints), 0, func(j int) error {
		c := constraints[j]
		aEv[j] = q.CS.Eval(c.A, witness)
		bEv[j] = q.CS.Eval(c.B, witness)
		cEv[j] = q.CS.Eval(c.C, witness)
		return nil
	})

	// Interpolate, move to the coset, divide pointwise by the (constant)
	// vanishing value, and come back. The three NTT chains are independent;
	// the pointwise division parallelizes per evaluation point.
	var aC, bC, cC []*big.Int
	_ = parallel.Do(
		func() error { aC = q.Domain.CosetFFT(q.Domain.IFFT(aEv)); return nil },
		func() error { bC = q.Domain.CosetFFT(q.Domain.IFFT(bEv)); return nil },
		func() error { cC = q.Domain.CosetFFT(q.Domain.IFFT(cEv)); return nil },
	)
	zInv := f.Inv(q.Domain.VanishingAtCoset())
	hC := f.QuotientPointwise(aC, bC, cC, zInv)
	h := q.Domain.CosetIFFT(hC)

	// For a satisfying witness the top coefficient vanishes; a nonzero one
	// means the witness does not satisfy the system.
	if h[n-1].Sign() != 0 {
		return nil, fmt.Errorf("qap: witness does not satisfy the constraint system")
	}
	return h[:n-1], nil
}

func zeros(n int) []*big.Int {
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = new(big.Int)
	}
	return out
}
