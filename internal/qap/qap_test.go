package qap_test

import (
	"math/big"
	"testing"

	"dragoon/internal/bn254"
	"dragoon/internal/ff"
	"dragoon/internal/qap"
	"dragoon/internal/r1cs"
)

// square chain: x_{i+1} = x_i², 5 constraints.
func chainSystem(t *testing.T) (*r1cs.System, r1cs.Witness) {
	t.Helper()
	cs := r1cs.NewSystem(ff.New(bn254.Order()))
	out := cs.Public()
	x := cs.Secret()
	cur := x
	f := cs.Field()
	var wires []r1cs.Variable
	for i := 0; i < 5; i++ {
		next := cs.Secret()
		cs.AddConstraint(
			r1cs.LC(r1cs.T(1, cur)),
			r1cs.LC(r1cs.T(1, cur)),
			r1cs.LC(r1cs.T(1, next)),
		)
		wires = append(wires, next)
		cur = next
	}
	cs.AddConstraint(r1cs.LC(r1cs.T(1, cur)), r1cs.LC(r1cs.T(1, r1cs.One)), r1cs.LC(r1cs.T(1, out)))

	w := cs.NewWitness()
	val := big.NewInt(3)
	cs.Assign(w, x, val)
	for _, wire := range wires {
		val = f.Mul(val, val)
		cs.Assign(w, wire, val)
	}
	cs.Assign(w, out, val)
	if err := cs.Satisfied(w); err != nil {
		t.Fatalf("witness: %v", err)
	}
	return cs, w
}

// TestQAPDivisibility is the core QAP property: for a satisfying witness,
// P(x) = A(x)·B(x) − C(x) vanishes on the whole domain, i.e. Z | P, and the
// quotient h returned by QuotientCoeffs reconstructs P as h·Z at a random
// point.
func TestQAPDivisibility(t *testing.T) {
	cs, w := chainSystem(t)
	q, err := qap.New(cs)
	if err != nil {
		t.Fatalf("qap.New: %v", err)
	}
	f := cs.Field()
	h, err := q.QuotientCoeffs(w)
	if err != nil {
		t.Fatalf("QuotientCoeffs: %v", err)
	}

	// Evaluate both sides at a random-ish point via the setup path.
	tau := big.NewInt(987654321123456789)
	ev, err := q.EvalAtTau(tau)
	if err != nil {
		t.Fatalf("EvalAtTau: %v", err)
	}
	// A(τ) = Σ z_i·u_i(τ), etc.
	aTau, bTau, cTau := f.Zero(), f.Zero(), f.Zero()
	for i := 0; i < cs.NumVariables(); i++ {
		aTau = f.Add(aTau, f.Mul(w[i], ev.U[i]))
		bTau = f.Add(bTau, f.Mul(w[i], ev.V[i]))
		cTau = f.Add(cTau, f.Mul(w[i], ev.W[i]))
	}
	lhs := f.Sub(f.Mul(aTau, bTau), cTau)
	rhs := f.Mul(ff.EvalPoly(f, h, tau), ev.ZTau)
	if lhs.Cmp(rhs) != 0 {
		t.Fatal("A(τ)B(τ) − C(τ) ≠ h(τ)Z(τ)")
	}
}

func TestQuotientRejectsBadWitness(t *testing.T) {
	cs, w := chainSystem(t)
	q, err := qap.New(cs)
	if err != nil {
		t.Fatal(err)
	}
	w[2] = big.NewInt(999) // break the chain
	if _, err := q.QuotientCoeffs(w); err == nil {
		t.Fatal("unsatisfying witness produced a quotient")
	}
}

func TestEvalAtTauRejectsDomainPoints(t *testing.T) {
	cs, _ := chainSystem(t)
	q, err := qap.New(cs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.EvalAtTau(big.NewInt(1)); err == nil {
		t.Fatal("τ=1 (a domain point) accepted")
	}
}

func TestDomainSizing(t *testing.T) {
	cs, _ := chainSystem(t) // 6 constraints
	q, err := qap.New(cs)
	if err != nil {
		t.Fatal(err)
	}
	if q.Domain.N != 8 {
		t.Errorf("domain size %d, want 8", q.Domain.N)
	}
}
