// Package r1cs implements rank-1 constraint systems — the NP language that
// generic zk-proof frameworks compile statements into. Each constraint is
// ⟨A, z⟩ · ⟨B, z⟩ = ⟨C, z⟩ over the witness vector z (whose first entry is
// the constant 1). The Dragoon paper's point is precisely that this
// compilation step ("the burdensome NP-reduction for generality") is what
// makes the generic approach orders of magnitude more expensive than its
// special-purpose PoQoEA; this package exists to reproduce that baseline
// faithfully.
package r1cs

import (
	"fmt"
	"math/big"

	"dragoon/internal/ff"
)

// Variable indexes a wire in the witness vector. Variable 0 is the constant
// one; public inputs follow, then private wires.
type Variable int

// One is the constant-1 wire.
const One Variable = 0

// Term is coeff·variable inside a linear combination.
type Term struct {
	Var   Variable
	Coeff *big.Int
}

// LinearCombination is a sparse Σ coeff·var.
type LinearCombination []Term

// LC builds a linear combination from (coeff, var) pairs.
func LC(terms ...Term) LinearCombination { return terms }

// T builds a term.
func T(c int64, v Variable) Term { return Term{Var: v, Coeff: big.NewInt(c)} }

// TB builds a term with a big coefficient.
func TB(c *big.Int, v Variable) Term { return Term{Var: v, Coeff: new(big.Int).Set(c)} }

// Constraint is one rank-1 constraint A·B = C.
type Constraint struct {
	A, B, C LinearCombination
}

// System is a constraint system under construction. Allocate all public
// inputs before any private wires.
type System struct {
	field       *ff.Field
	numPublic   int // excluding the constant wire
	numVars     int // including the constant wire
	constraints []Constraint
	sealed      bool
}

// NewSystem creates an empty system over f.
func NewSystem(f *ff.Field) *System {
	return &System{field: f, numVars: 1}
}

// Field returns the underlying field.
func (s *System) Field() *ff.Field { return s.field }

// Public allocates a public-input wire. It must precede all Secret calls.
func (s *System) Public() Variable {
	if s.sealed {
		panic("r1cs: public input allocated after private wires")
	}
	v := Variable(s.numVars)
	s.numVars++
	s.numPublic++
	return v
}

// Secret allocates a private wire.
func (s *System) Secret() Variable {
	s.sealed = true
	v := Variable(s.numVars)
	s.numVars++
	return v
}

// AddConstraint appends A·B = C.
func (s *System) AddConstraint(a, b, c LinearCombination) {
	s.constraints = append(s.constraints, Constraint{A: a, B: b, C: c})
}

// NumConstraints returns the number of constraints.
func (s *System) NumConstraints() int { return len(s.constraints) }

// NumVariables returns the witness length (including the constant wire).
func (s *System) NumVariables() int { return s.numVars }

// NumPublic returns the number of public inputs (excluding the constant).
func (s *System) NumPublic() int { return s.numPublic }

// Constraints exposes the constraint list (read-only by convention).
func (s *System) Constraints() []Constraint { return s.constraints }

// Witness is a full assignment z (z[0] = 1).
type Witness []*big.Int

// NewWitness allocates an assignment with z[0] = 1 and zeros elsewhere.
func (s *System) NewWitness() Witness {
	w := make(Witness, s.numVars)
	w[0] = big.NewInt(1)
	for i := 1; i < s.numVars; i++ {
		w[i] = new(big.Int)
	}
	return w
}

// Assign sets wire v to value (reduced into the field).
func (s *System) Assign(w Witness, v Variable, value *big.Int) {
	w[v] = s.field.Reduce(value)
}

// Eval computes ⟨lc, w⟩.
func (s *System) Eval(lc LinearCombination, w Witness) *big.Int {
	acc := s.field.Zero()
	for _, t := range lc {
		acc = s.field.Add(acc, s.field.Mul(t.Coeff, w[t.Var]))
	}
	return acc
}

// Satisfied checks every constraint against the assignment.
func (s *System) Satisfied(w Witness) error {
	if len(w) != s.numVars {
		return fmt.Errorf("r1cs: witness length %d, want %d", len(w), s.numVars)
	}
	if w[0] == nil || w[0].Cmp(big.NewInt(1)) != 0 {
		return fmt.Errorf("r1cs: witness constant wire is not 1")
	}
	for i, c := range s.constraints {
		a := s.Eval(c.A, w)
		b := s.Eval(c.B, w)
		cc := s.Eval(c.C, w)
		if s.field.Mul(a, b).Cmp(cc) != 0 {
			return fmt.Errorf("r1cs: constraint %d violated: %v · %v ≠ %v", i, a, b, cc)
		}
	}
	return nil
}

// PublicInputs extracts the public portion of a witness (excluding the
// constant wire).
func (s *System) PublicInputs(w Witness) []*big.Int {
	out := make([]*big.Int, s.numPublic)
	for i := 0; i < s.numPublic; i++ {
		out[i] = new(big.Int).Set(w[i+1])
	}
	return out
}
