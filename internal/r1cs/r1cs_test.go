package r1cs_test

import (
	"math/big"
	"testing"

	"dragoon/internal/bn254"
	"dragoon/internal/ff"
	"dragoon/internal/r1cs"
)

// buildMulCircuit returns a tiny system proving knowledge of x, y with
// x·y = p (public) and x+y = s (public).
func buildMulCircuit() (*r1cs.System, r1cs.Variable, r1cs.Variable, r1cs.Variable, r1cs.Variable) {
	cs := r1cs.NewSystem(ff.New(bn254.Order()))
	p := cs.Public()
	s := cs.Public()
	x := cs.Secret()
	y := cs.Secret()
	cs.AddConstraint(r1cs.LC(r1cs.T(1, x)), r1cs.LC(r1cs.T(1, y)), r1cs.LC(r1cs.T(1, p)))
	cs.AddConstraint(
		r1cs.LC(r1cs.T(1, x), r1cs.T(1, y)),
		r1cs.LC(r1cs.T(1, r1cs.One)),
		r1cs.LC(r1cs.T(1, s)),
	)
	return cs, p, s, x, y
}

func TestSatisfied(t *testing.T) {
	cs, p, s, x, y := buildMulCircuit()
	w := cs.NewWitness()
	cs.Assign(w, x, big.NewInt(6))
	cs.Assign(w, y, big.NewInt(7))
	cs.Assign(w, p, big.NewInt(42))
	cs.Assign(w, s, big.NewInt(13))
	if err := cs.Satisfied(w); err != nil {
		t.Fatalf("honest witness rejected: %v", err)
	}
	cs.Assign(w, p, big.NewInt(41))
	if err := cs.Satisfied(w); err == nil {
		t.Fatal("wrong product accepted")
	}
}

func TestCounts(t *testing.T) {
	cs, _, _, _, _ := buildMulCircuit()
	if cs.NumPublic() != 2 {
		t.Errorf("NumPublic = %d", cs.NumPublic())
	}
	if cs.NumVariables() != 5 {
		t.Errorf("NumVariables = %d", cs.NumVariables())
	}
	if cs.NumConstraints() != 2 {
		t.Errorf("NumConstraints = %d", cs.NumConstraints())
	}
}

func TestWitnessShapeChecks(t *testing.T) {
	cs, _, _, _, _ := buildMulCircuit()
	if err := cs.Satisfied(make(r1cs.Witness, 2)); err == nil {
		t.Error("short witness accepted")
	}
	w := cs.NewWitness()
	w[0] = big.NewInt(2) // constant wire corrupted
	if err := cs.Satisfied(w); err == nil {
		t.Error("corrupted constant wire accepted")
	}
}

func TestPublicAfterSecretPanics(t *testing.T) {
	cs := r1cs.NewSystem(ff.New(bn254.Order()))
	cs.Secret()
	defer func() {
		if recover() == nil {
			t.Error("Public after Secret did not panic")
		}
	}()
	cs.Public()
}

func TestPublicInputsExtraction(t *testing.T) {
	cs, p, s, x, y := buildMulCircuit()
	w := cs.NewWitness()
	cs.Assign(w, x, big.NewInt(3))
	cs.Assign(w, y, big.NewInt(5))
	cs.Assign(w, p, big.NewInt(15))
	cs.Assign(w, s, big.NewInt(8))
	pub := cs.PublicInputs(w)
	if len(pub) != 2 || pub[0].Int64() != 15 || pub[1].Int64() != 8 {
		t.Errorf("PublicInputs = %v", pub)
	}
}

func TestEvalLinearCombination(t *testing.T) {
	cs, _, _, x, y := buildMulCircuit()
	w := cs.NewWitness()
	cs.Assign(w, x, big.NewInt(10))
	cs.Assign(w, y, big.NewInt(4))
	lc := r1cs.LC(r1cs.T(2, x), r1cs.T(-1, y), r1cs.T(5, r1cs.One))
	got := cs.Eval(lc, w)
	// 2·10 − 4 + 5 = 21 (note: negative coefficients are reduced mod r).
	want := cs.Field().Reduce(big.NewInt(21))
	if got.Cmp(want) != 0 {
		t.Errorf("Eval = %v, want %v", got, want)
	}
}
