package service

// Wire codec for market.TaskResult — settlement reports that were delivered
// but not yet polled when a snapshot was taken travel inside it, so a restart
// loses nothing. Maps are encoded in sorted order; the encoding is
// deterministic.

import (
	"sort"

	"dragoon/internal/chain"
	"dragoon/internal/ledger"
	"dragoon/internal/market"
	"dragoon/internal/wire"
)

func writeResult(w *wire.Writer, tr *market.TaskResult) {
	w.WriteString(tr.ID)
	w.WriteString(string(tr.Requester))
	w.WriteUint(uint64(len(tr.Outcomes)))
	for _, o := range tr.Outcomes {
		w.WriteString(o.Name)
		w.WriteString(string(o.Addr))
		writeAnswers(w, o.Answers)
		w.WriteInt(int64(o.Quality))
		w.WriteBool(o.Revealed)
		w.WriteBool(o.Paid)
		w.WriteBool(o.Rejected)
	}
	methods := make([]string, 0, len(tr.GasByMethod))
	for m := range tr.GasByMethod {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	w.WriteUint(uint64(len(methods)))
	for _, m := range methods {
		w.WriteString(m)
		w.WriteUint(tr.GasByMethod[m])
	}
	w.WriteUint(tr.GasTotal)
	w.WriteUint(uint64(tr.Rounds))
	w.WriteBool(tr.Finalized)
	w.WriteBool(tr.Cancelled)
	w.WriteUint(uint64(tr.RequesterBalance))
	addrs := make([]chain.Address, 0, len(tr.HarvestedAnswers))
	for a := range tr.HarvestedAnswers {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	w.WriteUint(uint64(len(addrs)))
	for _, a := range addrs {
		w.WriteString(string(a))
		writeAnswers(w, tr.HarvestedAnswers[a])
	}
}

func readResult(r *wire.Reader) (*market.TaskResult, error) {
	tr := &market.TaskResult{}
	var err error
	if tr.ID, err = r.ReadString(); err != nil {
		return nil, err
	}
	req, err := r.ReadString()
	if err != nil {
		return nil, err
	}
	tr.Requester = chain.Address(req)
	n, err := r.ReadUint()
	if err != nil {
		return nil, err
	}
	tr.Outcomes = make([]market.WorkerOutcome, n)
	for i := range tr.Outcomes {
		o := &tr.Outcomes[i]
		if o.Name, err = r.ReadString(); err != nil {
			return nil, err
		}
		addr, err := r.ReadString()
		if err != nil {
			return nil, err
		}
		o.Addr = chain.Address(addr)
		if o.Answers, err = readAnswers(r); err != nil {
			return nil, err
		}
		q, err := r.ReadInt()
		if err != nil {
			return nil, err
		}
		o.Quality = int(q)
		if o.Revealed, err = r.ReadBool(); err != nil {
			return nil, err
		}
		if o.Paid, err = r.ReadBool(); err != nil {
			return nil, err
		}
		if o.Rejected, err = r.ReadBool(); err != nil {
			return nil, err
		}
	}
	if n, err = r.ReadUint(); err != nil {
		return nil, err
	}
	tr.GasByMethod = make(map[string]uint64, n)
	for i := uint64(0); i < n; i++ {
		m, err := r.ReadString()
		if err != nil {
			return nil, err
		}
		if tr.GasByMethod[m], err = r.ReadUint(); err != nil {
			return nil, err
		}
	}
	if tr.GasTotal, err = r.ReadUint(); err != nil {
		return nil, err
	}
	rounds, err := r.ReadUint()
	if err != nil {
		return nil, err
	}
	tr.Rounds = int(rounds)
	if tr.Finalized, err = r.ReadBool(); err != nil {
		return nil, err
	}
	if tr.Cancelled, err = r.ReadBool(); err != nil {
		return nil, err
	}
	bal, err := r.ReadUint()
	if err != nil {
		return nil, err
	}
	tr.RequesterBalance = ledger.Amount(bal)
	if n, err = r.ReadUint(); err != nil {
		return nil, err
	}
	tr.HarvestedAnswers = make(map[chain.Address][]int64, n)
	for i := uint64(0); i < n; i++ {
		a, err := r.ReadString()
		if err != nil {
			return nil, err
		}
		if tr.HarvestedAnswers[chain.Address(a)], err = readAnswers(r); err != nil {
			return nil, err
		}
	}
	return tr, nil
}
