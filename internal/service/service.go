// Package service is the streaming marketplace: one long-lived shared chain
// hosting an open-ended stream of HIT tasks. Where the batch harness
// (package market) runs a fixed task set for a fixed number of rounds, a
// Service accepts task submissions while the chain mines, admits them at the
// next round boundary, drives each through exactly the batch code path
// (market.Runtime / market.StepRound), and settles them individually — so a
// task admitted to a live service produces byte-for-byte the transcript it
// would produce in a batch run with the same seed and the same neighbours.
//
// The service keeps its state bounded: a settled task's contract storage and
// event log are pruned (PruneContract) and its off-chain questions deleted
// once no live task references them; retained receipts and global events are
// trimmed to a sliding window that never cuts beneath the oldest active
// task's admission round (so replaying clients and copy-commit adversaries
// keep the history they need); the ledger's diagnostic event trace is capped.
// Under those defaults the heap stays flat however many tasks stream through
// (cmd/soak measures it).
//
// Snapshot/Restore persists the whole world between rounds — chain, ledger,
// off-chain store, and per-task progress (admission round, seed, the answers
// each worker already produced) — and a restored service resumes
// byte-identically: clients are rebuilt from their seeds and re-stepped
// against a round-capped replay view of the restored chain
// (chain.ReplayBackend), re-drawing the same randomness and re-building the
// same cursors, then flipped live. See docs/SERVICE.md.
//
// With Config.Shards > 1 the service runs S independent chains (a
// chain.ShardSet) mined in lockstep: admission routes each task to one shard
// under Config.Placement, the round loop is market.StepShards, and
// retention, pruning and snapshots all operate per shard — pruning a settled
// task on shard A never disturbs cursors or history on shard B. Tasks never
// span shards inside the service, so a sharded stream settles each task
// byte-identically to the unsharded stream of the same submissions.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dragoon/internal/batch"
	"dragoon/internal/chain"
	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/ledger"
	"dragoon/internal/market"
	"dragoon/internal/opts"
	"dragoon/internal/swarm"
	"dragoon/internal/worker"
)

// Defaults for the retention and scheduling knobs (see Config).
const (
	DefaultRetainRounds       = 64
	DefaultRetainLedgerEvents = 4096
	DefaultTaskRoundBudget    = 64
	latencyRing               = 4096
)

// ErrClosed is returned by submissions to a closed service.
var ErrClosed = errors.New("service: closed")

// Config configures a streaming marketplace service.
type Config struct {
	// Group selects the crypto backend for every task.
	Group group.Group
	// Population is the shared worker pool task specs enroll from, identical
	// in role to market.Config.Population. Each member is funded once.
	Population []worker.Model
	// Scheduler is the network adversary for the shared chain (honest FIFO
	// if nil). It must be stateless across rounds if the service is to be
	// snapshotted (the FIFO default is); with Shards > 1 the one value is
	// shared by every shard, so it must be stateless there too.
	Scheduler chain.Scheduler
	// Shards splits the service across that many independent chains mined in
	// lockstep (0 or 1 keeps the historical single shared chain). Each shard
	// owns its ledger, chain and off-chain store; admitted tasks are routed
	// to shards by Placement and never span shards.
	Shards int
	// Placement picks each admitted task's shard when Shards > 1:
	// round-robin by admission index (default), or least-loaded by the
	// enrolled-worker count of currently active tasks.
	Placement market.Placement
	// SharedKey optionally makes every requester share one ElGamal key pair
	// (the paper's §VI key-reuse deployment).
	SharedKey *elgamal.PrivateKey
	// Seed derives per-task randomness streams by admission index, exactly
	// as market.Config.Seed derives them by task index.
	Seed int64
	// WorkerBalance funds each population member's ledger account once.
	WorkerBalance ledger.Amount
	// RetainRounds is the sliding window of retained receipts and global
	// events, in rounds (default 64). The window never cuts beneath the
	// oldest active task's admission round. Negative retains everything.
	RetainRounds int
	// RetainLedgerEvents caps the ledger's diagnostic event trace (default
	// 4096 newest entries). Negative retains everything.
	RetainLedgerEvents int
	// KeepSettled retains settled contracts' storage, event logs and
	// off-chain content instead of pruning them — the diagnostic mode the
	// equivalence and invariant tests run in. Bounded state needs it off.
	KeepSettled bool
	// TaskRoundBudget is how many rounds an admitted task may stay unsettled
	// before the service retires it as expired (default 64). Expired tasks
	// keep their contract (escrow may still hold coins) but stop pinning the
	// retention window.
	TaskRoundBudget int
	// Manual disables the background mining goroutine: the caller advances
	// the service one round at a time with Step. Deterministic tests and the
	// snapshot/restore path use manual mode.
	Manual bool
	// Options consolidates the execution knobs — Parallelism, BatchVerify,
	// ParallelExec — shared with every other run mode.
	opts.Options
}

func (c *Config) retainRounds() int {
	if c.RetainRounds == 0 {
		return DefaultRetainRounds
	}
	return c.RetainRounds
}

func (c *Config) taskRoundBudget() int {
	if c.TaskRoundBudget <= 0 {
		return DefaultTaskRoundBudget
	}
	return c.TaskRoundBudget
}

func (c *Config) shardCount() int {
	if c.Shards <= 1 {
		return 1
	}
	return c.Shards
}

// TaskStatus is the settlement report delivered for one submitted task.
type TaskStatus struct {
	// ID is the task (and contract) identifier.
	ID string
	// AdmittedRound and SettledRound are the chain rounds the task entered
	// and left the service at.
	AdmittedRound int
	SettledRound  int
	// Expired marks a task retired unsettled after its round budget.
	Expired bool
	// Err is set when the task failed admission (bad spec, duplicate
	// contract ID); such a task never ran.
	Err error
	// Result is the task's end-state report — exactly what a batch run
	// reports for the same task. Nil when Expired or Err is set.
	Result *market.TaskResult
}

// Stats is a point-in-time summary of the stream.
type Stats struct {
	// Round is the chain's current round.
	Round int
	// Active and Queued count tasks running and awaiting admission.
	Active int
	Queued int
	// Admitted, Settled, Expired and Rejected count tasks over the service's
	// lifetime (Settled counts both finalized and cancelled tasks).
	Admitted uint64
	Settled  uint64
	Expired  uint64
	Rejected uint64
	// QuestionsSettled sums N over settled tasks — the stream's throughput
	// numerator.
	QuestionsSettled uint64
	// P50Settle and P99Settle are settlement-latency percentiles (admission
	// to settlement, wall clock) over the most recent settled tasks.
	P50Settle time.Duration
	P99Settle time.Duration
}

// taskState is one admitted task riding the shared chain.
type taskState struct {
	rt         *market.Runtime
	spec       market.TaskSpec
	index      int
	seed       int64
	shard      int // the shard hosting the task's contract and content
	admitted   int // chain round
	admittedAt time.Time
	questions  swarm.Digest
}

// contentKey identifies one off-chain blob on one shard: shards have
// independent stores, so the live-reference count is per (shard, digest).
type contentKey struct {
	shard  int
	digest swarm.Digest
}

// Service is a long-lived streaming marketplace over one shared chain — or,
// with Config.Shards > 1, over a set of independent chains mined in lockstep.
type Service struct {
	cfg    Config
	shards []*chain.Shard
	set    *chain.ShardSet
	// led, ch and store alias shard 0's substrate — THE substrate of an
	// unsharded service, and the clock/report shard of a sharded one.
	led      *ledger.Ledger
	ch       *chain.Chain
	store    *swarm.Store
	auditors []*market.Auditor // per shard; nil when batch verify is off
	popAddrs []chain.Address

	// mu guards the chain substrate and the active task set; it is held for
	// the whole of a mined round.
	mu        sync.Mutex
	active    []*taskState
	nextIndex int
	content   map[contentKey]int // live references to off-chain content

	// qmu guards the admission queue, the result queue and the counters, so
	// SubmitTask and Poll never wait on mining. Lock order: mu before qmu.
	qmu       sync.Mutex
	queue     []market.TaskSpec
	results   []TaskStatus
	closed    bool
	err       error
	admitted  uint64
	settled   uint64
	expired   uint64
	rejected  uint64
	questions uint64
	latencies []time.Duration
	latPos    int

	wake chan struct{}
	done chan struct{}
}

// New starts a service. Unless cfg.Manual is set, a background goroutine
// mines rounds whenever tasks are queued or active and parks when idle; Close
// stops it.
func New(cfg Config) (*Service, error) {
	if cfg.Group == nil {
		return nil, errors.New("service: no group backend")
	}
	execWorkers := chain.ResolveExecWorkers(cfg.ParallelExec, cfg.Parallelism)
	shards := make([]*chain.Shard, cfg.shardCount())
	for i := range shards {
		shards[i] = chain.NewShard(i, cfg.Scheduler)
		shards[i].Chain.SetParallelExecution(execWorkers)
	}
	s, err := newService(cfg, shards)
	if err != nil {
		return nil, err
	}
	// Each population member funds on its home shard — mod-S, like the
	// sharded batch marketplace (trivially shard 0 when unsharded).
	if cfg.WorkerBalance > 0 {
		for i, a := range s.popAddrs {
			home := market.HomeShard(i, len(shards))
			shards[home].Ledger.Mint(ledger.AccountID(a), cfg.WorkerBalance)
		}
	}
	s.start()
	return s, nil
}

// newService wires a service shell over existing shard substrates (fresh in
// New, restored in Restore). It does not mint or start the background loop.
func newService(cfg Config, shards []*chain.Shard) (*Service, error) {
	set, err := chain.WrapShards(shards)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	set.SetMiners(cfg.Parallelism)
	s := &Service{
		cfg:     cfg,
		shards:  shards,
		set:     set,
		led:     shards[0].Ledger,
		ch:      shards[0].Chain,
		store:   shards[0].Store,
		content: make(map[contentKey]int),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	s.popAddrs = make([]chain.Address, len(cfg.Population))
	for i, m := range cfg.Population {
		s.popAddrs[i] = market.WorkerAddr(i, m.Name)
	}
	if batch.Resolve(cfg.BatchVerify) {
		s.auditors = make([]*market.Auditor, len(shards))
		for i := range s.auditors {
			s.auditors[i] = market.NewAuditor(cfg.Group)
		}
	}
	return s, nil
}

func (s *Service) start() {
	if s.cfg.Manual {
		close(s.done)
		return
	}
	go s.run()
}

// run is the background mining loop: one step per iteration, parked on the
// wake channel while there is nothing to do.
func (s *Service) run() {
	defer close(s.done)
	for {
		s.qmu.Lock()
		stop := s.closed || s.err != nil
		queued := len(s.queue) > 0
		s.qmu.Unlock()
		if stop {
			return
		}
		s.mu.Lock()
		idle := !queued && len(s.active) == 0
		s.mu.Unlock()
		if idle {
			<-s.wake
			continue
		}
		if err := s.step(context.Background()); err != nil {
			s.qmu.Lock()
			s.err = err
			s.qmu.Unlock()
			return
		}
	}
}

func (s *Service) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// SubmitTask queues one task for admission at the next round boundary. The
// spec's fields mean exactly what they mean in a batch market.Config: in
// particular, a zero spec.Seed derives the task's randomness stream from the
// service seed and the task's admission index, so submitting specs in a batch
// run's task order reproduces that run. SubmitTask never waits on mining.
func (s *Service) SubmitTask(spec market.TaskSpec) error {
	if spec.Instance == nil {
		return errors.New("service: task has no instance")
	}
	if spec.Instance.Task.ID == "" {
		return errors.New("service: task has no ID")
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.err != nil {
		return fmt.Errorf("service: stream failed: %w", s.err)
	}
	for _, q := range s.queue {
		if q.Instance.Task.ID == spec.Instance.Task.ID {
			return fmt.Errorf("service: task %q already queued", spec.Instance.Task.ID)
		}
	}
	s.queue = append(s.queue, spec)
	s.signal()
	return nil
}

// Poll drains the settlement reports accumulated since the previous Poll, in
// settlement order. Each task is reported exactly once.
func (s *Service) Poll() []TaskStatus {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	out := s.results
	s.results = nil
	return out
}

// Err returns the error that stopped the stream, if any.
func (s *Service) Err() error {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return s.err
}

// Close stops the service: no further submissions are accepted, the
// background loop (if any) finishes its current round and exits. Close
// returns the error that stopped the stream, if any. Queued-but-unadmitted
// and still-active tasks are left unsettled; Poll remains usable.
func (s *Service) Close() error {
	s.qmu.Lock()
	if s.closed {
		s.qmu.Unlock()
		<-s.done
		return s.Err()
	}
	s.closed = true
	s.qmu.Unlock()
	s.signal()
	<-s.done
	return s.Err()
}

// Step advances a manual-mode service one round: queued tasks are admitted,
// every active task advances through one shared mined round (exactly
// market.StepRound), settled tasks are reported and pruned, and retention
// windows are enforced. A step with nothing queued and nothing active is a
// no-op (the chain does not mine empty rounds on idle).
func (s *Service) Step(ctx context.Context) error {
	if !s.cfg.Manual {
		return errors.New("service: Step on a background-mode service (set Config.Manual)")
	}
	s.qmu.Lock()
	closed, failed := s.closed, s.err
	s.qmu.Unlock()
	if failed != nil {
		return fmt.Errorf("service: stream failed: %w", failed)
	}
	if closed {
		return ErrClosed
	}
	return s.step(ctx)
}

// step runs one round: admit, mine, settle, trim.
func (s *Service) step(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	s.qmu.Lock()
	queue := s.queue
	s.queue = nil
	s.qmu.Unlock()
	for _, spec := range queue {
		s.admitLocked(spec)
	}
	if len(s.active) == 0 {
		return nil
	}

	rts := make([]*market.Runtime, len(s.active))
	taskShards := make([]int, len(s.active))
	for i, st := range s.active {
		rts[i] = st.rt
		taskShards[i] = st.shard
	}
	if len(s.shards) == 1 {
		// The historical single-chain path, byte-for-byte.
		var auditor *market.Auditor
		if s.auditors != nil {
			auditor = s.auditors[0]
		}
		if err := market.StepRound(ctx, s.ch, rts, s.cfg.Parallelism, auditor); err != nil {
			return err
		}
	} else if err := market.StepShards(ctx, s.set, rts, taskShards, s.cfg.Parallelism, s.auditors); err != nil {
		return err
	}
	return s.settleLocked()
}

// placeLocked picks the shard for the next admitted task: round-robin by
// admission index by default, or the shard whose active tasks enroll the
// fewest workers under PlaceLeastLoaded (ties to the lowest index).
func (s *Service) placeLocked(spec *market.TaskSpec) int {
	if len(s.shards) == 1 {
		return 0
	}
	if s.cfg.Placement == market.PlaceLeastLoaded {
		load := make([]int, len(s.shards))
		for _, st := range s.active {
			load[st.shard] += market.EnrollSize(&st.spec, len(s.cfg.Population))
		}
		best := 0
		for si := 1; si < len(load); si++ {
			if load[si] < load[best] {
				best = si
			}
		}
		return best
	}
	return s.nextIndex % len(s.shards)
}

// admitLocked funds and launches one queued spec. Admission failures are
// reported through Poll rather than stopping the stream; a failed admission
// does not consume an admission index, so the seeds of subsequent tasks match
// the batch run that never contained the bad spec.
func (s *Service) admitLocked(spec market.TaskSpec) {
	seed := spec.Seed
	if seed == 0 {
		seed = market.DerivedTaskSeed(s.cfg.Seed, s.nextIndex)
	}
	shard := s.placeLocked(&spec)
	sh := s.shards[shard]
	rt, err := market.NewRuntime(market.RuntimeConfig{
		Spec:        spec,
		Index:       s.nextIndex,
		Seed:        seed,
		Group:       s.cfg.Group,
		Backend:     sh.Chain,
		Store:       sh.Store,
		Population:  s.cfg.Population,
		PopAddrs:    s.popAddrs,
		SharedKey:   s.cfg.SharedKey,
		BatchVerify: s.cfg.BatchVerify,
	})
	if err != nil {
		s.reject(spec, err)
		return
	}
	for _, st := range s.active {
		if st.rt.ID() == rt.ID() {
			s.reject(spec, fmt.Errorf("service: task %q already active", rt.ID()))
			return
		}
	}
	rt.Fund(sh.Ledger)
	if err := rt.Launch(); err != nil {
		s.reject(spec, err)
		return
	}
	if s.auditors != nil {
		s.auditors[shard].Register(rt.ID(), rt.RequesterKey().H)
	}
	st := &taskState{
		rt:         rt,
		spec:       spec,
		index:      s.nextIndex,
		seed:       seed,
		shard:      shard,
		admitted:   sh.Chain.Round(),
		admittedAt: time.Now(),
		questions:  swarm.Address(spec.Instance.Task.MarshalQuestions()),
	}
	s.content[contentKey{shard, st.questions}]++
	s.active = append(s.active, st)
	s.nextIndex++
	s.qmu.Lock()
	s.admitted++
	s.qmu.Unlock()
}

func (s *Service) reject(spec market.TaskSpec, err error) {
	id := ""
	if spec.Instance != nil {
		id = spec.Instance.Task.ID
	}
	s.qmu.Lock()
	s.rejected++
	s.results = append(s.results, TaskStatus{ID: id, Err: err})
	s.qmu.Unlock()
}

// settleLocked reaps settled and expired tasks after a mined round, prunes
// their state, and enforces the retention windows.
func (s *Service) settleLocked() error {
	round := s.ch.Round()
	budget := s.cfg.taskRoundBudget()
	keep := s.active[:0]
	var done []TaskStatus
	var lats []time.Duration
	var questions uint64
	var expired uint64
	for _, st := range s.active {
		switch {
		case st.rt.Finished():
			sh := s.shards[st.shard]
			res, err := st.rt.Result(sh.Chain, sh.Ledger)
			if err != nil {
				return err
			}
			if err := s.retireLocked(st, true); err != nil {
				return err
			}
			done = append(done, TaskStatus{
				ID:            res.ID,
				AdmittedRound: st.admitted,
				SettledRound:  round,
				Result:        &res,
			})
			lats = append(lats, time.Since(st.admittedAt))
			questions += uint64(st.rt.Questions())
		case round-st.admitted >= budget:
			// The task's contract is not pruned: escrow may still hold
			// coins, and conservation outranks compaction.
			if err := s.retireLocked(st, false); err != nil {
				return err
			}
			expired++
			done = append(done, TaskStatus{
				ID:            string(st.rt.ID()),
				AdmittedRound: st.admitted,
				SettledRound:  round,
				Expired:       true,
			})
		default:
			keep = append(keep, st)
		}
	}
	for i := len(keep); i < len(s.active); i++ {
		s.active[i] = nil
	}
	s.active = keep
	s.trimLocked()

	if len(done) > 0 || expired > 0 {
		s.qmu.Lock()
		s.results = append(s.results, done...)
		s.settled += uint64(len(done)) - expired
		s.expired += expired
		s.questions += questions
		for _, d := range lats {
			if len(s.latencies) < latencyRing {
				s.latencies = append(s.latencies, d)
			} else {
				s.latencies[s.latPos] = d
				s.latPos = (s.latPos + 1) % latencyRing
			}
		}
		s.qmu.Unlock()
	}
	return nil
}

// retireLocked removes a task's footprint: audit registration always;
// contract storage, event log and unreferenced off-chain content only when
// the task settled and pruning is on.
func (s *Service) retireLocked(st *taskState, prune bool) error {
	sh := s.shards[st.shard]
	if s.auditors != nil {
		s.auditors[st.shard].Unregister(st.rt.ID())
	}
	key := contentKey{st.shard, st.questions}
	if s.content[key]--; s.content[key] == 0 {
		delete(s.content, key)
		if prune && !s.cfg.KeepSettled {
			sh.Store.Delete(st.questions)
		}
	}
	if prune && !s.cfg.KeepSettled {
		if err := sh.Chain.PruneContract(st.rt.ID()); err != nil {
			return fmt.Errorf("service: pruning settled task: %w", err)
		}
	}
	return nil
}

// trimLocked enforces the retention windows: retained receipts and global
// events slide forward, but never past the oldest active task's admission
// round — replaying clients (restore) and receipt-scanning strategies
// (copy-commit) need the history of every live task's lifetime.
func (s *Service) trimLocked() {
	if s.cfg.RetainRounds >= 0 {
		// Shards mine in lockstep, so one floor serves them all; each
		// shard's window is still pinned by ITS oldest active admission, so
		// a long-lived task on shard A never forces shard B to hoard
		// history (and trimming B never breaks A's replaying clients).
		for si, sh := range s.shards {
			floor := sh.Chain.Round() - s.cfg.retainRounds()
			for _, st := range s.active {
				if st.shard == si && st.admitted < floor {
					floor = st.admitted
				}
			}
			if floor > 0 {
				sh.Chain.TrimBefore(floor)
			}
		}
	}
	if s.cfg.RetainLedgerEvents >= 0 {
		max := s.cfg.RetainLedgerEvents
		if max == 0 {
			max = DefaultRetainLedgerEvents
		}
		for _, sh := range s.shards {
			sh.Ledger.TrimEvents(max)
		}
	}
}

// Stats reports a point-in-time summary of the stream.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	round := s.ch.Round()
	active := len(s.active)
	s.mu.Unlock()
	s.qmu.Lock()
	defer s.qmu.Unlock()
	st := Stats{
		Round:            round,
		Active:           active,
		Queued:           len(s.queue),
		Admitted:         s.admitted,
		Settled:          s.settled,
		Expired:          s.expired,
		Rejected:         s.rejected,
		QuestionsSettled: s.questions,
	}
	if n := len(s.latencies); n > 0 {
		sorted := make([]time.Duration, n)
		copy(sorted, s.latencies)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		st.P50Settle = sorted[n/2]
		st.P99Settle = sorted[(n*99)/100]
	}
	return st
}

// Chain, Ledger and AuditedProofs expose the shared substrate for
// assertions (the adversary harness builds its invariant report from them).
// Both have their own locking; reading them mid-round is safe but racy with
// a background miner — quiesce (manual mode, or Close) for exact values.
// On a sharded service they return shard 0's substrate; use Shards for the
// rest.
func (s *Service) Chain() *chain.Chain { return s.ch }

// Ledger returns the shared ledger (shard 0's when sharded).
func (s *Service) Ledger() *ledger.Ledger { return s.led }

// Shards returns the per-shard substrate handles, in index order; length 1
// on an unsharded service. Callers must not mutate the slice.
func (s *Service) Shards() []*chain.Shard { return s.shards }

// AuditedProofs counts the VPKE openings the round auditors re-verified
// across every shard (0 unless batch verification is on).
func (s *Service) AuditedProofs() int {
	if s.auditors == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, a := range s.auditors {
		total += a.Count()
	}
	return total
}
