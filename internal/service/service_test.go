package service_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"dragoon/internal/drbg"
	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/ledger"
	"dragoon/internal/market"
	"dragoon/internal/opts"
	"dragoon/internal/protocol"
	"dragoon/internal/service"
	"dragoon/internal/task"
	"dragoon/internal/worker"
)

const streamTasks = 8

// diligent is a task-shape-agnostic honest worker (rng-free, so it can be
// shared across tasks and across a snapshot/restore boundary).
func diligent(name string, salt int64) worker.Model {
	return worker.Model{
		Name:     name,
		Strategy: protocol.StrategyHonest,
		Answers: func(qs []task.Question, rangeSize int64) []int64 {
			out := make([]int64, len(qs))
			for i := range out {
				out[i] = (int64(i) + salt) % rangeSize
			}
			return out
		},
	}
}

func outranger(name string) worker.Model {
	return worker.Model{
		Name:     name,
		Strategy: protocol.StrategyHonest,
		Answers: func(qs []task.Question, rangeSize int64) []int64 {
			out := make([]int64, len(qs))
			out[len(out)/2] = rangeSize + 7
			return out
		},
	}
}

// buildStream constructs the same marketplace the batch harness tests use —
// population, instances, policies — as a (service config, spec list) pair.
// Every call returns identical instances and rng states.
func buildStream(t *testing.T) (service.Config, []market.TaskSpec) {
	t.Helper()
	key, err := elgamal.KeyGen(group.TestSchnorr(), drbg.New(77, "stream-shared-key"))
	if err != nil {
		t.Fatal(err)
	}
	population := []worker.Model{
		diligent("dili", 1),
		diligent("mute", 2),
		worker.CopyPaster("copycat"),
		outranger("oor"),
	}
	population[1].Strategy = protocol.StrategyNoReveal

	specs := make([]market.TaskSpec, streamTasks)
	for ti := 0; ti < streamTasks; ti++ {
		inst, err := task.Generate(task.GenerateParams{
			ID: fmt.Sprintf("stream-%d", ti), N: 20, RangeSize: 4, NumGolden: 5,
			Workers: 5, Threshold: 3,
			Budget: ledger.Amount(1000 + 7*ti),
		}, rand.New(rand.NewSource(int64(500+ti))))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(1000 + ti)))
		acc := len(population)
		population = append(population,
			worker.Accurate(fmt.Sprintf("acc%d", ti), inst.GroundTruth, 0.6, rng),
			worker.Bot(fmt.Sprintf("bot%d", ti), rng))
		specs[ti] = market.TaskSpec{
			Instance: inst,
			Enroll:   []int{0, acc, acc + 1, 3, 1, 2},
		}
	}
	specs[4].Policy = protocol.PolicyNoGolden
	specs[5].Policy = protocol.PolicyFalseReport
	specs[6].Policy = protocol.PolicySilent
	specs[7].Enroll = []int{0}

	return service.Config{
		Group:      group.TestSchnorr(),
		Population: population,
		SharedKey:  key,
		Seed:       42,
		Manual:     true,
	}, specs
}

// drain steps a manual service until every submitted task was reported or
// maxRounds passed, collecting the reports by task ID.
func drain(t *testing.T, s *service.Service, want, maxRounds int) map[string]service.TaskStatus {
	t.Helper()
	got := make(map[string]service.TaskStatus, want)
	for r := 0; r < maxRounds && len(got) < want; r++ {
		if err := s.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
		for _, st := range s.Poll() {
			if _, dup := got[st.ID]; dup {
				t.Fatalf("task %q reported twice", st.ID)
			}
			got[st.ID] = st
		}
	}
	if len(got) != want {
		t.Fatalf("drained %d reports, want %d", len(got), want)
	}
	return got
}

// TestStreamMatchesBatch is the service's core equivalence claim: tasks
// streamed through a long-lived service — with settled-state pruning and
// retention trimming ON — settle with end-state reports identical to a batch
// market.Run of the same specs.
func TestStreamMatchesBatch(t *testing.T) {
	cfg, specs := buildStream(t)
	batchCfg, batchSpecs := buildStream(t)
	bres, err := market.Run(market.Config{
		Tasks:         batchSpecs,
		Group:         batchCfg.Group,
		Population:    batchCfg.Population,
		SharedKey:     batchCfg.SharedKey,
		Seed:          batchCfg.Seed,
		WorkerBalance: batchCfg.WorkerBalance,
	})
	if err != nil {
		t.Fatal(err)
	}

	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		if err := s.SubmitTask(spec); err != nil {
			t.Fatal(err)
		}
	}
	got := drain(t, s, len(specs), 60)
	for ti := range specs {
		want := bres.Tasks[ti]
		st, ok := got[want.ID]
		if !ok {
			t.Fatalf("task %q never settled in the stream", want.ID)
		}
		if st.Err != nil || st.Expired {
			t.Fatalf("task %q: err=%v expired=%v", want.ID, st.Err, st.Expired)
		}
		if !reflect.DeepEqual(*st.Result, want) {
			t.Errorf("task %q: stream result diverges from batch:\n stream %+v\n batch  %+v",
				want.ID, *st.Result, want)
		}
	}
	if err := s.Ledger().CheckConservation(); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if stats.Settled != uint64(len(specs)) || stats.Active != 0 || stats.Expired != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.QuestionsSettled == 0 || stats.P50Settle == 0 {
		t.Fatalf("throughput stats not recorded: %+v", stats)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamPruningEquivalence runs the same stream with aggressive pruning
// and with full retention: settlement reports must be identical — compaction
// is invisible to outcomes.
func TestStreamPruningEquivalence(t *testing.T) {
	run := func(mutate func(*service.Config)) map[string]service.TaskStatus {
		cfg, specs := buildStream(t)
		mutate(&cfg)
		s, err := service.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range specs {
			if err := s.SubmitTask(spec); err != nil {
				t.Fatal(err)
			}
		}
		got := drain(t, s, len(specs), 60)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	pruned := run(func(c *service.Config) { c.RetainRounds = 4 })
	kept := run(func(c *service.Config) {
		c.KeepSettled = true
		c.RetainRounds = -1
		c.RetainLedgerEvents = -1
	})
	if len(pruned) != len(kept) {
		t.Fatalf("%d pruned reports vs %d kept", len(pruned), len(kept))
	}
	for id, p := range pruned {
		k, ok := kept[id]
		if !ok {
			t.Fatalf("task %q settled only under pruning", id)
		}
		if !reflect.DeepEqual(p, k) {
			t.Errorf("task %q: pruning changed the settlement report:\n pruned %+v\n kept   %+v", id, p, k)
		}
	}
}

// rehydrator maps IDs back to specs for Restore.
func rehydrator(specs []market.TaskSpec) service.Rehydrate {
	return func(id string) (market.TaskSpec, error) {
		for _, spec := range specs {
			if spec.Instance.Task.ID == id {
				return spec, nil
			}
		}
		return market.TaskSpec{}, fmt.Errorf("unknown task %q", id)
	}
}

// rngFreeStream is buildStream restricted to rng-free models: a restored
// service reconstructs answers from the snapshot record, but tasks still
// resolving answers after the restore call freshly-constructed models, so
// exact restart determinism holds for rng-free populations.
func rngFreeStream(t *testing.T, parallelism int) (service.Config, []market.TaskSpec) {
	t.Helper()
	population := []worker.Model{
		diligent("dili", 1),
		diligent("mute", 2),
		worker.CopyPaster("copycat"),
		outranger("oor"),
		diligent("slow", 3),
	}
	population[1].Strategy = protocol.StrategyNoReveal
	specs := make([]market.TaskSpec, 4)
	for ti := range specs {
		inst, err := task.Generate(task.GenerateParams{
			ID: fmt.Sprintf("snap-%d", ti), N: 12, RangeSize: 4, NumGolden: 3,
			Workers: 4, Threshold: 2,
			Budget: ledger.Amount(900 + 11*ti),
		}, rand.New(rand.NewSource(int64(300+ti))))
		if err != nil {
			t.Fatal(err)
		}
		specs[ti] = market.TaskSpec{Instance: inst, Enroll: []int{0, 1, 3, 4}}
	}
	specs[1].Policy = protocol.PolicyFalseReport
	specs[3].Enroll = []int{0, 2, 3, 4}
	return service.Config{
		Group:      group.TestSchnorr(),
		Population: population,
		Seed:       1234,
		Manual:     true,
		Options:    opts.Options{Parallelism: parallelism},
	}, specs
}

// fingerprint renders the chain's retained transcript.
func fingerprint(s *service.Service) string {
	out := ""
	for _, rcpt := range s.Chain().Receipts() {
		status := "ok"
		if rcpt.Err != nil {
			status = "revert:" + rcpt.Err.Error()
		}
		out += fmt.Sprintf("r%d %s %s/%s gas=%d %s\n",
			rcpt.Round, rcpt.Tx.From, rcpt.Tx.Contract, rcpt.Tx.Method, rcpt.GasUsed, status)
	}
	for _, ev := range s.Chain().Events() {
		out += fmt.Sprintf("ev r%d %s %s %x\n", ev.Round, ev.Contract, ev.Name, ev.Data)
	}
	return out
}

// TestSnapshotRestoreMidStream cuts a live stream mid-flight: snapshot,
// restore into a fresh service, continue both to completion, and require the
// restored branch to reproduce the unbroken branch's settlement reports AND
// chain transcript byte-for-byte. Swept at parallelism 1 and NumCPU.
func TestSnapshotRestoreMidStream(t *testing.T) {
	for _, par := range []int{1, runtime.NumCPU()} {
		par := par
		t.Run(fmt.Sprintf("parallelism-%d", par), func(t *testing.T) {
			cfg, specs := rngFreeStream(t, par)
			// Full retention so the two branches' transcripts are
			// comparable end-to-end (trim timing is identical anyway, but
			// the full log makes divergence diagnosable).
			cfg.KeepSettled = true
			cfg.RetainRounds = -1
			cfg.RetainLedgerEvents = -1

			s, err := service.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Staggered admissions: two tasks at round 0, two more later, so
			// the snapshot catches tasks at different lifecycle points.
			for _, spec := range specs[:2] {
				if err := s.SubmitTask(spec); err != nil {
					t.Fatal(err)
				}
			}
			for r := 0; r < 3; r++ {
				if err := s.Step(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
			for _, spec := range specs[2:] {
				if err := s.SubmitTask(spec); err != nil {
					t.Fatal(err)
				}
			}
			for r := 0; r < 2; r++ {
				if err := s.Step(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
			snap, err := s.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			// Branch A: the unbroken run.
			gotA := drain(t, s, len(specs), 60)
			fpA := fingerprint(s)

			// Branch B: restore and continue.
			restored, err := service.Restore(cfg, snap, rehydrator(specs))
			if err != nil {
				t.Fatal(err)
			}
			gotB := drain(t, restored, len(specs), 60)
			fpB := fingerprint(restored)

			if fpA != fpB {
				t.Fatalf("restored transcript diverges:\n--- unbroken ---\n%s--- restored ---\n%s", fpA, fpB)
			}
			for id, a := range gotA {
				b, ok := gotB[id]
				if !ok {
					t.Fatalf("task %q missing after restore", id)
				}
				if a.Expired || b.Expired || a.Err != nil || b.Err != nil {
					t.Fatalf("task %q did not settle cleanly: %+v vs %+v", id, a, b)
				}
				if !reflect.DeepEqual(*a.Result, *b.Result) {
					t.Errorf("task %q: restored result diverges:\n unbroken %+v\n restored %+v", id, *a.Result, *b.Result)
				}
				if a.AdmittedRound != b.AdmittedRound || a.SettledRound != b.SettledRound {
					t.Errorf("task %q: settlement timing diverges", id)
				}
			}
			if err := restored.Ledger().CheckConservation(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSnapshotCarriesUnpolledResults: reports delivered before the snapshot
// but never polled must survive the restart.
func TestSnapshotCarriesUnpolledResults(t *testing.T) {
	cfg, specs := rngFreeStream(t, 1)
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		if err := s.SubmitTask(spec); err != nil {
			t.Fatal(err)
		}
	}
	// Step until at least one task settled, WITHOUT polling.
	settled := 0
	for r := 0; r < 60 && settled == 0; r++ {
		if err := s.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
		settled = int(s.Stats().Settled)
	}
	if settled == 0 {
		t.Fatal("no task settled in 60 rounds")
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := service.Restore(cfg, snap, rehydrator(specs))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, restored, len(specs), 60)
	for _, spec := range specs {
		st, ok := got[spec.Instance.Task.ID]
		if !ok || st.Result == nil {
			t.Fatalf("task %q lost across the restart (status %+v)", spec.Instance.Task.ID, st)
		}
	}
}

// TestBackgroundStream exercises the non-manual mode: a goroutine mines
// whenever work exists, SubmitTask and Poll never block on mining.
func TestBackgroundStream(t *testing.T) {
	cfg, specs := buildStream(t)
	cfg.Manual = false
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		if err := s.SubmitTask(spec); err != nil {
			t.Fatal(err)
		}
	}
	got := make(map[string]service.TaskStatus)
	deadline := time.Now().Add(60 * time.Second)
	for len(got) < len(specs) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d tasks settled before deadline (err=%v)", len(got), len(specs), s.Err())
		}
		for _, st := range s.Poll() {
			got[st.ID] = st
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for id, st := range got {
		if st.Err != nil || st.Expired || st.Result == nil {
			t.Errorf("task %q: %+v", id, st)
		}
	}
	if err := s.Ledger().CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestTaskRoundBudget: a task outliving its round budget is retired as
// expired; the stream keeps going and money is conserved.
func TestTaskRoundBudget(t *testing.T) {
	cfg, specs := rngFreeStream(t, 1)
	cfg.TaskRoundBudget = 1
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitTask(specs[0]); err != nil {
		t.Fatal(err)
	}
	got := drain(t, s, 1, 10)
	st := got[specs[0].Instance.Task.ID]
	if !st.Expired || st.Result != nil {
		t.Fatalf("want expired status, got %+v", st)
	}
	if err := s.Ledger().CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// The expired task's contract survives (escrow safety): submitting a
	// fresh task with the same ID must be rejected, not clobber it.
	if err := s.SubmitTask(specs[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	var rejected *service.TaskStatus
	for _, r := range s.Poll() {
		r := r
		if r.Err != nil {
			rejected = &r
		}
	}
	if rejected == nil {
		t.Fatal("duplicate contract ID was admitted over a live contract")
	}
}

// TestSubmitValidation covers the rejection paths.
func TestSubmitValidation(t *testing.T) {
	cfg, specs := rngFreeStream(t, 1)
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitTask(market.TaskSpec{}); err == nil {
		t.Fatal("nil instance accepted")
	}
	if err := s.SubmitTask(specs[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitTask(specs[0]); err == nil {
		t.Fatal("duplicate queued ID accepted")
	}
	bad := specs[1]
	bad.Enroll = []int{0, 0}
	if err := s.SubmitTask(bad); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	var rejections int
	for _, st := range s.Poll() {
		if st.Err != nil {
			rejections++
		}
	}
	if rejections != 1 {
		t.Fatalf("want 1 admission rejection, got %d", rejections)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitTask(specs[2]); err != service.ErrClosed {
		t.Fatalf("submit after close: %v", err)
	}
}
