package service_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"dragoon/internal/chain"
	"dragoon/internal/ledger"
	"dragoon/internal/market"
	"dragoon/internal/service"
)

// streamReports runs one manual stream to completion and returns its reports
// plus the (still open) service for substrate assertions.
func streamReports(t *testing.T, mutate func(*service.Config)) (map[string]service.TaskStatus, *service.Service) {
	t.Helper()
	cfg, specs := buildStream(t)
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		if err := s.SubmitTask(spec); err != nil {
			t.Fatal(err)
		}
	}
	return drain(t, s, len(specs), 60), s
}

// TestShardedStreamMatchesUnsharded: the same submissions streamed through a
// 2- and 4-shard service must settle with reports — results, admission and
// settlement rounds — identical to the single-chain stream. Tasks never span
// shards, shards mine in lockstep, and each shard's transcript is a pure
// function of its own tasks, so sharding is invisible to settlement.
func TestShardedStreamMatchesUnsharded(t *testing.T) {
	base, bs := streamReports(t, nil)
	if err := bs.Close(); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			got, s := streamReports(t, func(c *service.Config) {
				c.Shards = shards
				// Keep contract logs so placement is observable below.
				c.KeepSettled = true
				c.RetainRounds = -1
				c.RetainLedgerEvents = -1
			})
			if len(s.Shards()) != shards {
				t.Fatalf("service has %d shard handles, want %d", len(s.Shards()), shards)
			}
			for id, want := range base {
				st, ok := got[id]
				if !ok {
					t.Fatalf("task %q never settled on the sharded stream", id)
				}
				if st.Err != nil || st.Expired || st.Result == nil {
					t.Fatalf("task %q: %+v", id, st)
				}
				if !reflect.DeepEqual(*st.Result, *want.Result) {
					t.Errorf("task %q: sharded result diverges:\n sharded   %+v\n unsharded %+v", id, *st.Result, *want.Result)
				}
				if st.AdmittedRound != want.AdmittedRound || st.SettledRound != want.SettledRound {
					t.Errorf("task %q: settlement timing diverges: %d..%d vs %d..%d",
						id, st.AdmittedRound, st.SettledRound, want.AdmittedRound, want.SettledRound)
				}
			}
			// Round-robin placement: task ti's contract events live on shard
			// ti mod S and nowhere else.
			for ti := 0; ti < streamTasks; ti++ {
				id := ledger.ContractID(fmt.Sprintf("stream-%d", ti))
				for si, sh := range s.Shards() {
					evs := sh.Chain.EventsFor(id)
					if want := si == ti%shards; (len(evs) > 0) != want {
						t.Errorf("task %d: %d events on shard %d, placement says shard %d", ti, len(evs), si, ti%shards)
					}
				}
			}
			for si, sh := range s.Shards() {
				if err := sh.Ledger.CheckConservation(); err != nil {
					t.Errorf("shard %d: %v", si, err)
				}
			}
			if stats := s.Stats(); stats.Settled != streamTasks || stats.Active != 0 {
				t.Fatalf("stats = %+v", stats)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardPruneIsolation is the shard-boundary pruning test: settling and
// pruning a task on shard 0 truncates THAT chain's log — a stale cursor
// there reports chain.ErrPruned — while a live task's cursor on shard 1
// keeps polling cleanly through its whole lifetime.
func TestShardPruneIsolation(t *testing.T) {
	cfg, specs := rngFreeStream(t, 1)
	cfg.Shards = 2
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id0 := ledger.ContractID(specs[0].Instance.Task.ID)
	cur0 := s.Shards()[0].Chain.Cursor(id0)

	// Task 0 (admission index 0 → shard 0) runs alone to settlement,
	// polled along the way so the cursor holds a real position; its
	// contract is pruned on settle, invalidating that position.
	if err := s.SubmitTask(specs[0]); err != nil {
		t.Fatal(err)
	}
	var observed, settled0 int
	for r := 0; r < 30 && settled0 == 0; r++ {
		if err := s.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
		if evs, err := cur0.Poll(); err == nil {
			observed += len(evs)
		}
		for _, st := range s.Poll() {
			if st.Err != nil || st.Expired || st.Result == nil {
				t.Fatalf("task 0 did not settle cleanly: %+v", st)
			}
			settled0++
		}
	}
	if settled0 != 1 || observed == 0 {
		t.Fatalf("task 0: settled %d times, cursor saw %d events", settled0, observed)
	}
	if _, err := cur0.Poll(); !errors.Is(err, chain.ErrPruned) {
		t.Fatalf("stale cursor over the pruned shard-0 log: err = %v, want ErrPruned", err)
	}

	// Task 1 (admission index 1 → shard 1) now runs with a live cursor on
	// ITS shard: shard 0's prune must never leak into shard 1's log.
	if err := s.SubmitTask(specs[1]); err != nil {
		t.Fatal(err)
	}
	id1 := ledger.ContractID(specs[1].Instance.Task.ID)
	cur1 := s.Shards()[1].Chain.Cursor(id1)
	var events, settled int
	for r := 0; r < 30 && settled == 0; r++ {
		if err := s.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
		for _, st := range s.Poll() {
			if st.ID == specs[1].Instance.Task.ID && st.Result != nil {
				settled++
			}
		}
		if settled > 0 {
			// Task 1 settled (and was pruned) this round — on its own
			// shard, by its own lifecycle.
			break
		}
		evs, err := cur1.Poll()
		if err != nil {
			t.Fatalf("shard-1 cursor failed while shard 0 is pruned: %v", err)
		}
		events += len(evs)
	}
	if settled != 1 {
		t.Fatal("task 1 never settled")
	}
	if events == 0 {
		t.Fatal("shard-1 cursor observed no events — the isolation check was vacuous")
	}
	// Cross-check the other direction: shard 1's log for task 0 was always
	// empty, and both ledgers still conserve.
	if evs := s.Shards()[1].Chain.EventsFor(id0); len(evs) != 0 {
		t.Fatalf("task 0 leaked %d events onto shard 1", len(evs))
	}
	for si, sh := range s.Shards() {
		if err := sh.Ledger.CheckConservation(); err != nil {
			t.Errorf("shard %d: %v", si, err)
		}
	}
}

// TestServiceLeastLoadedPlacement pins the streaming least-loaded policy: it
// counts only ACTIVE tasks, so after the stream drains, the next admission
// goes to shard 0 — where round-robin (by admission index) would pick
// shard 1.
func TestServiceLeastLoadedPlacement(t *testing.T) {
	cfg, specs := rngFreeStream(t, 1)
	cfg.Shards = 2
	cfg.Placement = market.PlaceLeastLoaded
	cfg.KeepSettled = true
	cfg.RetainRounds = -1
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitTask(specs[0]); err != nil {
		t.Fatal(err)
	}
	drain(t, s, 1, 30)
	if err := s.SubmitTask(specs[1]); err != nil {
		t.Fatal(err)
	}
	drain(t, s, 1, 30)
	for ti, want := range []int{0, 0} {
		id := ledger.ContractID(specs[ti].Instance.Task.ID)
		for si, sh := range s.Shards() {
			if got := len(sh.Chain.EventsFor(id)) > 0; got != (si == want) {
				t.Errorf("task %d: events-on-shard-%d = %v, want placement on shard %d", ti, si, got, want)
			}
		}
	}
}

// shardFingerprint renders every shard's retained transcript, shard by
// shard.
func shardFingerprint(s *service.Service) string {
	out := ""
	for _, sh := range s.Shards() {
		out += fmt.Sprintf("== shard %d ==\n", sh.Index)
		for _, rcpt := range sh.Chain.Receipts() {
			status := "ok"
			if rcpt.Err != nil {
				status = "revert:" + rcpt.Err.Error()
			}
			out += fmt.Sprintf("r%d %s %s/%s gas=%d %s\n",
				rcpt.Round, rcpt.Tx.From, rcpt.Tx.Contract, rcpt.Tx.Method, rcpt.GasUsed, status)
		}
		for _, ev := range sh.Chain.Events() {
			out += fmt.Sprintf("ev r%d %s %s %x\n", ev.Round, ev.Contract, ev.Name, ev.Data)
		}
	}
	return out
}

// TestShardedSnapshotRestoreMidStream cuts a live 2-shard stream mid-flight
// — tasks at different lifecycle points on both shards — and requires the
// restored service to reproduce the unbroken branch's settlement reports and
// every shard's chain transcript byte-for-byte.
func TestShardedSnapshotRestoreMidStream(t *testing.T) {
	for _, par := range []int{1, runtime.NumCPU()} {
		par := par
		t.Run(fmt.Sprintf("parallelism-%d", par), func(t *testing.T) {
			cfg, specs := rngFreeStream(t, par)
			cfg.Shards = 2
			cfg.KeepSettled = true
			cfg.RetainRounds = -1
			cfg.RetainLedgerEvents = -1

			s, err := service.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range specs[:2] {
				if err := s.SubmitTask(spec); err != nil {
					t.Fatal(err)
				}
			}
			for r := 0; r < 3; r++ {
				if err := s.Step(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
			for _, spec := range specs[2:] {
				if err := s.SubmitTask(spec); err != nil {
					t.Fatal(err)
				}
			}
			for r := 0; r < 2; r++ {
				if err := s.Step(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
			snap, err := s.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			gotA := drain(t, s, len(specs), 60)
			fpA := shardFingerprint(s)

			restored, err := service.Restore(cfg, snap, rehydrator(specs))
			if err != nil {
				t.Fatal(err)
			}
			if len(restored.Shards()) != 2 {
				t.Fatalf("restored service has %d shards", len(restored.Shards()))
			}
			gotB := drain(t, restored, len(specs), 60)
			fpB := shardFingerprint(restored)

			if fpA != fpB {
				t.Fatalf("restored shard transcripts diverge:\n--- unbroken ---\n%s--- restored ---\n%s", fpA, fpB)
			}
			for id, a := range gotA {
				b, ok := gotB[id]
				if !ok {
					t.Fatalf("task %q missing after restore", id)
				}
				if a.Expired || b.Expired || a.Err != nil || b.Err != nil {
					t.Fatalf("task %q did not settle cleanly: %+v vs %+v", id, a, b)
				}
				if !reflect.DeepEqual(*a.Result, *b.Result) {
					t.Errorf("task %q: restored result diverges:\n unbroken %+v\n restored %+v", id, *a.Result, *b.Result)
				}
				if a.AdmittedRound != b.AdmittedRound || a.SettledRound != b.SettledRound {
					t.Errorf("task %q: settlement timing diverges", id)
				}
			}
			for si, sh := range restored.Shards() {
				if err := sh.Ledger.CheckConservation(); err != nil {
					t.Errorf("restored shard %d: %v", si, err)
				}
			}
		})
	}
}

// TestSnapshotShardCountMismatch: a snapshot only restores into a config
// with the same shard count — v2 snapshots name their count, v1 means one.
func TestSnapshotShardCountMismatch(t *testing.T) {
	cfg, specs := rngFreeStream(t, 1)
	cfg.Shards = 2
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitTask(specs[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	flat := cfg
	flat.Shards = 0
	if _, err := service.Restore(flat, snap, rehydrator(specs)); err == nil {
		t.Fatal("sharded snapshot restored into an unsharded config")
	}

	flatSvc, err := service.New(flat)
	if err != nil {
		t.Fatal(err)
	}
	flatSnap, err := flatSvc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := service.Restore(cfg, flatSnap, rehydrator(specs)); err == nil {
		t.Fatal("unsharded snapshot restored into a sharded config")
	}
}
