package service

// Service snapshot/restore: the chain, ledger and off-chain store snapshots
// plus the service's own stream state — admission counter, lifetime counters,
// per-active-task progress records and the not-yet-polled settlement reports.
//
// Clients (requester and worker protocol state) are code plus a randomness
// stream, not data: a snapshot records only each active task's identity,
// admission round, resolved seed and the plaintext answers its workers
// already produced. Restore rebuilds every client from its seed and re-steps
// it round by round against a round-capped replay view of the restored chain
// (chain.ReplayBackend) — it re-draws the same randomness and rebuilds the
// same commitments and cursors, its submissions (already mined) are
// discarded, and the recorded answers keep replay from re-consuming any
// worker model's (possibly shared) rng. Task specs themselves carry code too
// (answer models, policies), so Restore takes a Rehydrate callback mapping a
// task ID back to its spec; tasks admitted AFTER a restore resolve answers
// from the caller's freshly constructed models, so exact stream-level
// determinism across a restart holds for rng-free model populations (the
// equivalence tests use those; see docs/SERVICE.md).

import (
	"errors"
	"fmt"

	"dragoon/internal/chain"
	"dragoon/internal/contract"
	"dragoon/internal/ledger"
	"dragoon/internal/market"
	"dragoon/internal/swarm"
	"dragoon/internal/wire"
)

// snapshotVersion guards the service snapshot encoding. An unsharded
// service writes version 1 (the historical layout, one chain/ledger/store
// triple); a sharded one writes version 2, which carries a shard count, one
// substrate triple per shard, and each active task's shard index.
const (
	snapshotVersion        = 1
	snapshotVersionSharded = 2
)

// Rehydrate maps an active task's ID back to its spec on restore. The spec
// must be semantically identical to the one originally submitted (same
// instance secrets, enrollment, policy); the service re-derives everything
// else.
type Rehydrate func(id string) (market.TaskSpec, error)

// Snapshot encodes the whole service world at a round boundary. The
// admission queue must be empty (step once, or stop submitting, first):
// queued specs carry code and cannot be serialized. On a background-mode
// service, Snapshot waits for the in-flight round.
func (s *Service) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if len(s.queue) > 0 {
		return nil, errors.New("service: snapshot with queued submissions (admit them first: they carry code, not data)")
	}
	sharded := len(s.shards) > 1
	w := wire.NewWriter()
	if sharded {
		w.WriteUint(snapshotVersionSharded)
		w.WriteUint(uint64(len(s.shards)))
	} else {
		w.WriteUint(snapshotVersion)
	}
	for _, sh := range s.shards {
		chainBytes, err := sh.Chain.Snapshot()
		if err != nil {
			return nil, err
		}
		w.WriteBytes(chainBytes)
		w.WriteBytes(sh.Ledger.Snapshot())
		w.WriteBytes(sh.Store.Snapshot())
	}
	w.WriteUint(uint64(s.nextIndex))
	w.WriteUint(s.admitted)
	w.WriteUint(s.settled)
	w.WriteUint(s.expired)
	w.WriteUint(s.rejected)
	w.WriteUint(s.questions)

	w.WriteUint(uint64(len(s.active)))
	for _, st := range s.active {
		w.WriteString(string(st.rt.ID()))
		w.WriteUint(uint64(st.index))
		w.WriteInt(st.seed)
		if sharded {
			w.WriteUint(uint64(st.shard))
		}
		w.WriteUint(uint64(st.admitted))
		answers := st.rt.RecordedAnswers()
		w.WriteUint(uint64(len(answers)))
		for _, a := range answers {
			writeAnswers(w, a)
		}
	}

	w.WriteUint(uint64(len(s.results)))
	for _, r := range s.results {
		writeStatus(w, r)
	}
	return w.Bytes(), nil
}

// Restore rebuilds a service from a Snapshot. cfg must match the snapshotted
// service's configuration (population, group, seed, knobs); rehydrate is
// called once per active task. The restored service resumes in the mode cfg
// selects (manual or background).
func Restore(cfg Config, data []byte, rehydrate Rehydrate) (*Service, error) {
	if cfg.Group == nil {
		return nil, errors.New("service: no group backend")
	}
	r := wire.NewReader(data)
	v, err := r.ReadUint()
	if err != nil {
		return nil, fmt.Errorf("service: restore: %w", err)
	}
	if v != snapshotVersion && v != snapshotVersionSharded {
		return nil, fmt.Errorf("service: restore: snapshot version %d, want %d or %d",
			v, snapshotVersion, snapshotVersionSharded)
	}
	sharded := v == snapshotVersionSharded
	count := uint64(1)
	if sharded {
		if count, err = r.ReadUint(); err != nil {
			return nil, fmt.Errorf("service: restore: shard count: %w", err)
		}
		if count < 2 {
			return nil, fmt.Errorf("service: restore: sharded snapshot with %d shards", count)
		}
	}
	if int(count) != cfg.shardCount() {
		return nil, fmt.Errorf("service: restore: snapshot has %d shards, config asks for %d", count, cfg.shardCount())
	}
	execWorkers := chain.ResolveExecWorkers(cfg.ParallelExec, cfg.Parallelism)
	shards := make([]*chain.Shard, count)
	for i := range shards {
		chainBytes, err := r.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("service: restore: shard %d chain: %w", i, err)
		}
		ledgerBytes, err := r.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("service: restore: shard %d ledger: %w", i, err)
		}
		storeBytes, err := r.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("service: restore: shard %d store: %w", i, err)
		}
		led, err := ledger.Restore(ledgerBytes)
		if err != nil {
			return nil, err
		}
		store, err := swarm.Restore(storeBytes)
		if err != nil {
			return nil, err
		}
		ch, err := chain.RestoreChain(led, cfg.Scheduler, chainBytes)
		if err != nil {
			return nil, err
		}
		ch.SetParallelExecution(execWorkers)
		shards[i] = &chain.Shard{Index: i, Ledger: led, Chain: ch, Store: store}
	}
	s, err := newService(cfg, shards)
	if err != nil {
		return nil, err
	}

	next, err := r.ReadUint()
	if err != nil {
		return nil, fmt.Errorf("service: restore: index: %w", err)
	}
	s.nextIndex = int(next)
	for _, c := range []*uint64{&s.admitted, &s.settled, &s.expired, &s.rejected, &s.questions} {
		if *c, err = r.ReadUint(); err != nil {
			return nil, fmt.Errorf("service: restore: counters: %w", err)
		}
	}

	n, err := r.ReadUint()
	if err != nil {
		return nil, fmt.Errorf("service: restore: active tasks: %w", err)
	}
	for i := uint64(0); i < n; i++ {
		if err := s.restoreTask(r, rehydrate, sharded); err != nil {
			return nil, err
		}
	}

	if n, err = r.ReadUint(); err != nil {
		return nil, fmt.Errorf("service: restore: results: %w", err)
	}
	s.results = make([]TaskStatus, n)
	for i := range s.results {
		if s.results[i], err = readStatus(r); err != nil {
			return nil, fmt.Errorf("service: restore: result %d: %w", i, err)
		}
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("service: restore: %w", err)
	}
	s.start()
	return s, nil
}

// restoreTask rebuilds one active task's clients by replaying its lifetime
// against its restored shard's chain.
func (s *Service) restoreTask(r *wire.Reader, rehydrate Rehydrate, sharded bool) error {
	id, err := r.ReadString()
	if err != nil {
		return fmt.Errorf("service: restore: task id: %w", err)
	}
	index, err := r.ReadUint()
	if err != nil {
		return fmt.Errorf("service: restore: task %q: %w", id, err)
	}
	seed, err := r.ReadInt()
	if err != nil {
		return fmt.Errorf("service: restore: task %q: %w", id, err)
	}
	shard := uint64(0)
	if sharded {
		if shard, err = r.ReadUint(); err != nil {
			return fmt.Errorf("service: restore: task %q shard: %w", id, err)
		}
		if int(shard) >= len(s.shards) {
			return fmt.Errorf("service: restore: task %q on shard %d of %d", id, shard, len(s.shards))
		}
	}
	admittedRound, err := r.ReadUint()
	if err != nil {
		return fmt.Errorf("service: restore: task %q: %w", id, err)
	}
	na, err := r.ReadUint()
	if err != nil {
		return fmt.Errorf("service: restore: task %q: %w", id, err)
	}
	answers := make([][]int64, na)
	for i := range answers {
		if answers[i], err = readAnswers(r); err != nil {
			return fmt.Errorf("service: restore: task %q answers: %w", id, err)
		}
	}

	if rehydrate == nil {
		return fmt.Errorf("service: restore: task %q active but no rehydrate callback", id)
	}
	spec, err := rehydrate(id)
	if err != nil {
		return fmt.Errorf("service: restore: task %q: %w", id, err)
	}
	if spec.Instance == nil || spec.Instance.Task.ID != id {
		return fmt.Errorf("service: restore: rehydrated spec does not describe task %q", id)
	}

	// Rebuild the clients over a replay view capped at the admission round,
	// re-install the contract program (snapshots carry state, not code), and
	// re-step every lived round — all against the task's own shard.
	// Submissions are discarded — they are already mined into the restored
	// chain.
	sh := s.shards[shard]
	rb := chain.NewReplayBackend(sh.Chain, int(admittedRound))
	rt, err := market.NewRuntime(market.RuntimeConfig{
		Spec:        spec,
		Index:       int(index),
		Seed:        seed,
		Group:       s.cfg.Group,
		Backend:     rb,
		Store:       sh.Store,
		Population:  s.cfg.Population,
		PopAddrs:    s.popAddrs,
		SharedKey:   s.cfg.SharedKey,
		BatchVerify: s.cfg.BatchVerify,
		Answers:     answers,
	})
	if err != nil {
		return fmt.Errorf("service: restore: task %q: %w", id, err)
	}
	if err := sh.Chain.RegisterContract(rt.ID(), contract.New(s.cfg.Group)); err != nil {
		return fmt.Errorf("service: restore: task %q: %w", id, err)
	}
	if err := rt.Launch(); err != nil {
		return fmt.Errorf("service: restore: task %q: %w", id, err)
	}
	for round := int(admittedRound); round < sh.Chain.Round(); round++ {
		rb.SetRound(round)
		if err := rt.StepRequester(); err != nil {
			return fmt.Errorf("service: replaying task %q round %d: %w", id, round, err)
		}
		for i := 0; i < rt.Workers(); i++ {
			if err := rt.Prepare(i); err != nil {
				return fmt.Errorf("service: replaying task %q round %d worker %d: %w", id, round, i, err)
			}
			if _, err := rt.WorkerTxs(i); err != nil {
				return fmt.Errorf("service: replaying task %q round %d worker %d: %w", id, round, i, err)
			}
		}
	}
	rb.GoLive()

	if s.auditors != nil {
		s.auditors[shard].Register(rt.ID(), rt.RequesterKey().H)
	}
	st := &taskState{
		rt:        rt,
		spec:      spec,
		index:     int(index),
		seed:      seed,
		shard:     int(shard),
		admitted:  int(admittedRound),
		questions: swarm.Address(spec.Instance.Task.MarshalQuestions()),
	}
	s.content[contentKey{st.shard, st.questions}]++
	s.active = append(s.active, st)
	return nil
}

// writeAnswers / readAnswers encode one worker's plaintext answer vector,
// distinguishing "not yet produced" (nil) from produced-but-empty.
func writeAnswers(w *wire.Writer, a []int64) {
	if a == nil {
		w.WriteBool(false)
		return
	}
	w.WriteBool(true)
	w.WriteUint(uint64(len(a)))
	for _, v := range a {
		w.WriteInt(v)
	}
}

func readAnswers(r *wire.Reader) ([]int64, error) {
	present, err := r.ReadBool()
	if err != nil {
		return nil, err
	}
	if !present {
		return nil, nil
	}
	n, err := r.ReadUint()
	if err != nil {
		return nil, err
	}
	a := make([]int64, n)
	for i := range a {
		if a[i], err = r.ReadInt(); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// writeStatus / readStatus encode one not-yet-polled settlement report.
func writeStatus(w *wire.Writer, st TaskStatus) {
	w.WriteString(st.ID)
	w.WriteUint(uint64(st.AdmittedRound))
	w.WriteUint(uint64(st.SettledRound))
	w.WriteBool(st.Expired)
	if st.Err != nil {
		w.WriteString(st.Err.Error())
	} else {
		w.WriteString("")
	}
	if st.Result == nil {
		w.WriteBool(false)
		return
	}
	w.WriteBool(true)
	writeResult(w, st.Result)
}

func readStatus(r *wire.Reader) (TaskStatus, error) {
	var st TaskStatus
	var err error
	if st.ID, err = r.ReadString(); err != nil {
		return st, err
	}
	admitted, err := r.ReadUint()
	if err != nil {
		return st, err
	}
	st.AdmittedRound = int(admitted)
	settled, err := r.ReadUint()
	if err != nil {
		return st, err
	}
	st.SettledRound = int(settled)
	if st.Expired, err = r.ReadBool(); err != nil {
		return st, err
	}
	errStr, err := r.ReadString()
	if err != nil {
		return st, err
	}
	if errStr != "" {
		st.Err = errors.New(errStr)
	}
	present, err := r.ReadBool()
	if err != nil {
		return st, err
	}
	if present {
		if st.Result, err = readResult(r); err != nil {
			return st, err
		}
	}
	return st, nil
}
