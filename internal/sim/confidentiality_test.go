package sim_test

import (
	"bytes"
	"testing"

	"dragoon/internal/group"
	"dragoon/internal/sim"
	"dragoon/internal/worker"
)

// TestOnChainDataRevealsNothing is the confidentiality smoke test behind
// the paper's anti-free-riding argument: two workers submitting IDENTICAL
// answer vectors must leave completely different byte strings on chain
// (distinct commitments, distinct ciphertexts), so a free-rider watching
// the chain learns nothing to copy.
func TestOnChainDataRevealsNothing(t *testing.T) {
	inst := smallInstance(t, 55, 2)
	res := run(t, sim.Config{
		Instance: inst,
		Group:    group.TestSchnorr(),
		Workers: []worker.Model{
			worker.Perfect("twin-a", inst.GroundTruth),
			worker.Perfect("twin-b", inst.GroundTruth), // same answers
		},
		Seed: 55,
	})
	if !res.Finalized {
		t.Fatal("task did not finalize")
	}

	// Collect each worker's on-chain artifacts.
	type artifacts struct{ commit, reveal []byte }
	byWorker := make(map[string]*artifacts)
	for _, rcpt := range res.Chain.Receipts() {
		from := string(rcpt.Tx.From)
		if byWorker[from] == nil {
			byWorker[from] = &artifacts{}
		}
		switch rcpt.Tx.Method {
		case "commit":
			byWorker[from].commit = rcpt.Tx.Data
		case "reveal":
			byWorker[from].reveal = rcpt.Tx.Data
		}
	}
	var list []*artifacts
	for from, a := range byWorker {
		if a.commit != nil {
			list = append(list, a)
			_ = from
		}
	}
	if len(list) != 2 {
		t.Fatalf("expected 2 committing workers, found %d", len(list))
	}
	if bytes.Equal(list[0].commit, list[1].commit) {
		t.Error("identical answers produced identical commitments (copyable!)")
	}
	if bytes.Equal(list[0].reveal, list[1].reveal) {
		t.Error("identical answers produced identical ciphertext vectors")
	}
	// No plaintext answer bytes appear verbatim: the reveal payload is
	// group elements, so the 1-byte answers cannot be read off. (Smoke
	// check: the reveal data of twins differs in most positions.)
	same := 0
	min := len(list[0].reveal)
	if len(list[1].reveal) < min {
		min = len(list[1].reveal)
	}
	for i := 0; i < min; i++ {
		if list[0].reveal[i] == list[1].reveal[i] {
			same++
		}
	}
	if float64(same)/float64(min) > 0.5 {
		t.Errorf("reveal payloads of identical answers agree on %d/%d bytes", same, min)
	}
}

// TestCommitmentsHideUntilReveal asserts phase separation: before the
// reveal round, no ciphertext bytes exist on-chain at all, so even the
// rushing adversary has nothing to work with during the commit phase.
func TestCommitmentsHideUntilReveal(t *testing.T) {
	inst := smallInstance(t, 56, 2)
	res := run(t, sim.Config{
		Instance: inst,
		Group:    group.TestSchnorr(),
		Workers: []worker.Model{
			worker.Perfect("w0", inst.GroundTruth),
			worker.Perfect("w1", inst.GroundTruth),
		},
		Seed: 56,
	})
	if !res.Finalized {
		t.Fatal("task did not finalize")
	}
	var commitRound = -1
	for _, ev := range res.Chain.Events() {
		if ev.Name == "committed" {
			commitRound = ev.Round
		}
	}
	if commitRound < 0 {
		t.Fatal("no committed event")
	}
	for _, ev := range res.Chain.Events() {
		if ev.Name == "revealed" && ev.Round <= commitRound {
			t.Errorf("ciphertexts appeared on-chain in round %d, before commits closed (%d)",
				ev.Round, commitRound)
		}
	}
}
