package sim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dragoon/internal/group"
	"dragoon/internal/ledger"
	"dragoon/internal/market"
	"dragoon/internal/protocol"
	"dragoon/internal/sim"
	"dragoon/internal/task"
	"dragoon/internal/worker"
)

// goldenWrong returns a worker answering every question correctly EXCEPT
// the golden standards, which it answers wrongly — quality 0, the cleanest
// way to force a PoQoEA rejection.
func goldenWrong(name string, inst *task.Instance) worker.Model {
	return worker.Model{
		Name:     name,
		Strategy: protocol.StrategyHonest,
		Answers: func(qs []task.Question, rangeSize int64) []int64 {
			out := make([]int64, len(qs))
			copy(out, inst.GroundTruth)
			for _, gi := range inst.Golden.Indices {
				out[gi] = (out[gi] + 1) % rangeSize
			}
			return out
		},
	}
}

// checkConserved asserts the ledger invariants every finalize path must
// preserve: total supply is exactly what the harness minted, the contract
// escrow is fully drained, and the requester ends with the expected
// balance (the unspent budget, division dust included, returns to her).
func checkConserved(t *testing.T, res *sim.Result, inst *task.Instance,
	workers int, workerBalance, wantRequester ledger.Amount) {
	t.Helper()
	if err := res.Ledger.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	minted := inst.Task.Budget*2 + ledger.Amount(workers)*workerBalance
	if got := res.Ledger.TotalSupply(); got != minted {
		t.Errorf("total supply = %d, want %d", got, minted)
	}
	if got := res.Ledger.Escrow(ledger.ContractID(inst.Task.ID)); got != 0 {
		t.Errorf("contract escrow = %d after settlement, want 0", got)
	}
	if got := res.RequesterBalance; got != wantRequester {
		t.Errorf("requester balance = %d, want %d", got, wantRequester)
	}
	// Every coin is accounted for on some party's liquid balance.
	var sum ledger.Amount
	for _, acct := range res.Ledger.Accounts() {
		sum += res.Ledger.Balance(acct)
	}
	if sum != minted {
		t.Errorf("liquid balances sum to %d, want %d", sum, minted)
	}
}

// TestFundConservationAcrossFinalizePaths drives every settlement path the
// contract has — all paid, quality-rejected, out-of-range-rejected,
// unrevealed, cancelled, and the false-reporting requester — with a budget
// that does NOT divide evenly by the worker quota, and asserts the ledger
// conserves coins and returns the dust to the requester in each.
func TestFundConservationAcrossFinalizePaths(t *testing.T) {
	newInst := func(id string, workers int, budget ledger.Amount) *task.Instance {
		inst, err := task.Generate(task.GenerateParams{
			ID: id, N: 12, RangeSize: 3, NumGolden: 4,
			Workers: workers, Threshold: 3, Budget: budget,
		}, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		return inst
	}
	run := func(inst *task.Instance, models []worker.Model, policy protocol.RequesterPolicy, balance ledger.Amount) *sim.Result {
		t.Helper()
		res, err := sim.Run(sim.Config{
			Instance:      inst,
			Group:         group.TestSchnorr(),
			Workers:       models,
			Policy:        policy,
			Seed:          11,
			WorkerBalance: balance,
		})
		if err != nil {
			t.Fatalf("%s: %v", inst.Task.ID, err)
		}
		return res
	}

	t.Run("all paid, dust refunded", func(t *testing.T) {
		// 1000 / 3 = 333 per worker: 999 paid, 1 coin of dust back.
		inst := newInst("paid", 3, 1000)
		res := run(inst, []worker.Model{
			worker.Perfect("w0", inst.GroundTruth),
			worker.Perfect("w1", inst.GroundTruth),
			worker.Perfect("w2", inst.GroundTruth),
		}, 0, 0)
		if !res.Finalized {
			t.Fatal("did not finalize")
		}
		for _, o := range res.Outcomes {
			if !o.Paid {
				t.Errorf("%s not paid", o.Name)
			}
		}
		checkConserved(t, res, inst, 3, 0, 2000-3*333)
	})

	t.Run("quality rejected, full refund", func(t *testing.T) {
		inst := newInst("rejected", 2, 501) // reward 250, dust 1
		res := run(inst, []worker.Model{
			goldenWrong("bad0", inst),
			goldenWrong("bad1", inst),
		}, 0, 0)
		if !res.Finalized {
			t.Fatal("did not finalize")
		}
		for _, o := range res.Outcomes {
			if !o.Rejected || o.Paid {
				t.Errorf("%s: rejected=%v paid=%v, want rejected unpaid", o.Name, o.Rejected, o.Paid)
			}
		}
		checkConserved(t, res, inst, 2, 0, 2*501)
	})

	t.Run("out of range rejected", func(t *testing.T) {
		inst := newInst("outrange", 2, 501)
		res := run(inst, []worker.Model{
			worker.Perfect("good", inst.GroundTruth),
			worker.OutOfRange("oor", inst.GroundTruth, 5, 99),
		}, 0, 7)
		if !res.Finalized {
			t.Fatal("did not finalize")
		}
		if !res.Outcomes[0].Paid || !res.Outcomes[1].Rejected {
			t.Errorf("outcomes = %+v", res.Outcomes)
		}
		checkConserved(t, res, inst, 2, 7, 2*501-250)
	})

	t.Run("unrevealed forfeits", func(t *testing.T) {
		inst := newInst("unrevealed", 2, 1001) // reward 500, dust 1
		res := run(inst, []worker.Model{
			worker.Perfect("good", inst.GroundTruth),
			worker.NoReveal("mute", inst.GroundTruth),
		}, 0, 0)
		if !res.Finalized {
			t.Fatal("did not finalize")
		}
		if !res.Outcomes[0].Paid || res.Outcomes[1].Paid {
			t.Errorf("outcomes = %+v", res.Outcomes)
		}
		checkConserved(t, res, inst, 2, 0, 2*1001-500)
	})

	t.Run("cancelled refunds everything", func(t *testing.T) {
		inst := newInst("cancelled", 3, 1000)
		res := run(inst, []worker.Model{
			worker.Perfect("lonely", inst.GroundTruth), // quota of 3 never fills
		}, 0, 0)
		if !res.Cancelled {
			t.Fatal("did not cancel")
		}
		checkConserved(t, res, inst, 1, 0, 2000)
	})

	t.Run("false report pays the workers", func(t *testing.T) {
		inst := newInst("falsereport", 2, 667) // reward 333, dust 1
		res := run(inst, []worker.Model{
			worker.Perfect("w0", inst.GroundTruth),
			worker.Perfect("w1", inst.GroundTruth),
		}, protocol.PolicyFalseReport, 0)
		if !res.Finalized {
			t.Fatal("did not finalize")
		}
		for _, o := range res.Outcomes {
			if !o.Paid {
				t.Errorf("%s not paid despite invalid rejection", o.Name)
			}
		}
		checkConserved(t, res, inst, 2, 0, 2*667-2*333)
	})
}

// TestFundConservationMarketplace checks conservation on a shared chain:
// several contracts with dusty budgets settle concurrently and every escrow
// drains back to its own requester.
func TestFundConservationMarketplace(t *testing.T) {
	g := group.TestSchnorr()
	specs := make([]market.TaskSpec, 4)
	var minted ledger.Amount
	for i := range specs {
		inst, err := task.Generate(task.GenerateParams{
			ID: fmt.Sprintf("cons-%d", i), N: 10, RangeSize: 3, NumGolden: 3,
			Workers: 3, Threshold: 2, Budget: ledger.Amount(1000 + i), // dust for i != 2
		}, rand.New(rand.NewSource(int64(20+i))))
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = market.TaskSpec{Instance: inst, Enroll: []int{0, 1, 2}}
		minted += inst.Task.Budget * 2
	}
	res, err := market.Run(market.Config{
		Tasks: specs,
		Group: g,
		Population: []worker.Model{
			diligentModel("d0"), diligentModel("d1"), diligentModel("d2"),
		},
		Seed: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Ledger.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if got := res.Ledger.TotalSupply(); got != minted {
		t.Errorf("total supply = %d, want %d", got, minted)
	}
	for _, tr := range res.Tasks {
		if !tr.Finalized && !tr.Cancelled {
			t.Errorf("task %s never settled", tr.ID)
		}
		if got := res.Ledger.Escrow(ledger.ContractID(tr.ID)); got != 0 {
			t.Errorf("task %s escrow = %d after settlement, want 0", tr.ID, got)
		}
	}
}

// diligentModel answers whatever questions it is given deterministically
// (task-shape agnostic, shareable across tasks).
func diligentModel(name string) worker.Model {
	return worker.Model{
		Name:     name,
		Strategy: protocol.StrategyHonest,
		Answers: func(qs []task.Question, rangeSize int64) []int64 {
			return make([]int64, len(qs))
		},
	}
}
