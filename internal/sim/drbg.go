package sim

import (
	"encoding/binary"

	"dragoon/internal/keccak"
)

// drbg is a deterministic random byte generator (keccak256 in counter mode)
// used to make whole protocol executions reproducible from a single seed.
// It implements io.Reader; it is NOT a cryptographic RNG and exists only so
// experiments and differential tests are replayable.
type drbg struct {
	seed    [32]byte
	counter uint64
	buf     []byte
}

// newDRBG derives a deterministic reader from a seed and a domain label
// (so each party gets an independent stream).
func newDRBG(seed int64, label string) *drbg {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(seed))
	d := &drbg{}
	d.seed = keccak.Sum256Concat(buf[:], []byte(label))
	return d
}

// Read implements io.Reader; it never fails.
func (d *drbg) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if len(d.buf) == 0 {
			var ctr [8]byte
			binary.BigEndian.PutUint64(ctr[:], d.counter)
			d.counter++
			block := keccak.Sum256Concat(d.seed[:], ctr[:])
			d.buf = block[:]
		}
		m := copy(p, d.buf)
		d.buf = d.buf[m:]
		p = p[m:]
	}
	return n, nil
}
