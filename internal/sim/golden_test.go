package sim_test

import (
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dragoon/internal/group"
	"dragoon/internal/sim"
	"dragoon/internal/task"
	"dragoon/internal/worker"
)

// updateGolden regenerates the committed fingerprint files instead of
// comparing against them: `make golden`, or
// `go test ./internal/sim -run TestGoldenFingerprint -update-golden`.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden fingerprint files")

// goldenConfig is the golden fixture: a run that traverses the WHOLE
// protocol — commits, reveals, the golden opening, a VPKE out-of-range
// rejection, a PoQoEA quality rejection, a no-reveal forfeit, default
// payments and finalize with dust refund. (The mixed workload of
// parallel_test.go cancels — its copy-paster starves the quota — so it
// would pin only the cancellation path.)
func goldenConfig(t *testing.T) sim.Config {
	t.Helper()
	rng := rand.New(rand.NewSource(2020))
	inst, err := task.Generate(task.GenerateParams{
		ID: "golden", N: 30, RangeSize: 4, NumGolden: 8,
		Workers: 5, Threshold: 6, Budget: 5003, // dusty: 5003 % 5 != 0
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	shared := rand.New(rand.NewSource(2020 * 17))
	return sim.Config{
		Instance: inst,
		Group:    group.TestSchnorr(),
		Workers: []worker.Model{
			worker.Perfect("perfect", inst.GroundTruth),
			worker.Accurate("acc", inst.GroundTruth, 0.5, shared),
			worker.Bot("bot", shared),
			worker.OutOfRange("oor", inst.GroundTruth, 3, 99),
			worker.NoReveal("mute", inst.GroundTruth),
		},
		Seed: 2020,
	}
}

// TestGoldenFingerprint pins the complete observable artifact of a seeded
// run — every receipt, event, payment and harvested answer — against a
// committed golden file, so ANY determinism break (an rng drawn in a new
// order, a reordered transaction, a gas-schedule drift) is caught by a
// single test run instead of surfacing as a hard-to-bisect cross-platform
// flake.
func TestGoldenFingerprint(t *testing.T) {
	res, err := sim.Run(goldenConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	got := fingerprint(res)
	path := filepath.Join("testdata", "golden_sim.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `make golden` to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("seeded sim.Run fingerprint drifted from %s.\n"+
			"If the change is intentional (protocol, gas or rng-order change), regenerate with `make golden` and commit the diff.\n"+
			"got %d bytes, want %d bytes", path, len(got), len(want))
	}
}
