package sim

import (
	"dragoon/internal/chain"
	"dragoon/internal/ledger"
	"dragoon/internal/poqoea"
	"dragoon/internal/protocol"
	"dragoon/internal/task"
)

// IdealWorker is one participant as seen by the ideal functionality: the
// worker's identity and the answer vector the adversary let through
// (nil ⇔ a_j = ⊥, i.e. the worker never revealed).
type IdealWorker struct {
	Addr    chain.Address
	Answers []int64
}

// IdealOutcome is the ideal functionality's verdict.
type IdealOutcome struct {
	// Paid maps each participating worker to whether F_hit paid them B/K.
	Paid map[chain.Address]bool
	// RequesterRefund is the unspent part of the deposit.
	RequesterRefund ledger.Amount
}

// RunIdeal executes the ideal functionality F_hit (Fig. 2) on plaintext
// inputs: it is the specification the real protocol is differentially
// tested against (the executable form of Theorem 1's ideal world).
//
// Per Fig. 2's evaluation phase, with the requester behaviour modeled by
// policy:
//
//   - an honest requester sends (evaluate, W_j) for every worker — F pays
//     iff Quality(a_j) ≥ Θ — and (outrange, W_j, i) for out-of-range
//     answers — F withholds iff the answer is indeed out of range;
//   - a silent / golden-withholding requester sends nothing — F pays every
//     worker with a_j ≠ ⊥;
//   - a false-reporting requester's messages carry claims F itself
//     recomputes, so the verdict is identical to the honest case for
//     out-of-range/quality facts; for the specific attack we model
//     (underclaiming quality with no evidence) the contract pays, which in
//     the ideal world equals the silent case.
func RunIdeal(inst *task.Instance, workers []IdealWorker, policy protocol.RequesterPolicy) IdealOutcome {
	st := inst.Golden.Statement(inst.Task.RangeSize)
	reward := inst.Task.Reward()
	out := IdealOutcome{Paid: make(map[chain.Address]bool, len(workers))}
	var spent ledger.Amount
	for _, w := range workers {
		if w.Answers == nil {
			out.Paid[w.Addr] = false
			continue
		}
		paid := false
		switch policy {
		case protocol.PolicyHonest:
			outOfRange := false
			for _, a := range w.Answers {
				if a < 0 || a >= inst.Task.RangeSize {
					outOfRange = true
					break
				}
			}
			paid = !outOfRange && poqoea.Quality(w.Answers, st) >= inst.Task.Threshold
		case protocol.PolicySilent, protocol.PolicyNoGolden, protocol.PolicyFalseReport:
			paid = true
		}
		out.Paid[w.Addr] = paid
		if paid {
			spent += reward
		}
	}
	out.RequesterRefund = inst.Task.Budget - spent
	return out
}
