package sim_test

import (
	"math/rand"
	"testing"

	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/sim"
	"dragoon/internal/task"
	"dragoon/internal/worker"
)

// TestOneKeyPairAcrossTasks reproduces the §VI claim that a requester can
// "manage only one private-public key pair throughout all her tasks": two
// distinct tasks run with the same key, and both complete with correct
// payments and harvested answers.
func TestOneKeyPairAcrossTasks(t *testing.T) {
	g := group.TestSchnorr()
	key, err := elgamal.KeyGen(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []string{"task-one", "task-two"} {
		rng := rand.New(rand.NewSource(int64(60 + i)))
		inst, err := task.Generate(task.GenerateParams{
			ID: id, N: 10, RangeSize: 3, NumGolden: 3,
			Workers: 2, Threshold: 2, Budget: 200,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Instance:     inst,
			Group:        g,
			RequesterKey: key,
			Workers: []worker.Model{
				worker.Perfect("w0", inst.GroundTruth),
				worker.Perfect("w1", inst.GroundTruth),
			},
			Seed: int64(60 + i),
		})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !res.Finalized {
			t.Fatalf("%s did not finalize", id)
		}
		for _, o := range res.Outcomes {
			if !o.Paid {
				t.Errorf("%s: worker %s not paid", id, o.Name)
			}
		}
		for addr, answers := range res.HarvestedAnswers {
			for q, a := range answers {
				if a != inst.GroundTruth[q] {
					t.Errorf("%s: harvested %s[%d] = %d, want %d", id, addr, q, a, inst.GroundTruth[q])
				}
			}
		}
	}
}

// TestKeyGroupMismatchRejected guards the key-reuse path against mixing
// group backends.
func TestKeyGroupMismatchRejected(t *testing.T) {
	key, err := elgamal.KeyGen(group.TestSchnorr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(70))
	inst, err := task.Generate(task.GenerateParams{
		ID: "mix", N: 4, RangeSize: 2, NumGolden: 1,
		Workers: 1, Threshold: 1, Budget: 10,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(sim.Config{
		Instance:     inst,
		Group:        group.BN254G1(),
		RequesterKey: key,
		Workers:      []worker.Model{worker.Perfect("w", inst.GroundTruth)},
		Seed:         70,
	})
	if err == nil {
		t.Fatal("group-mismatched key accepted")
	}
}
