package sim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dragoon/internal/group"
	"dragoon/internal/opts"
	"dragoon/internal/sim"
	"dragoon/internal/task"
	"dragoon/internal/worker"
)

// fingerprint folds every observable artifact of a run — worker outcomes,
// gas accounting, the full receipt stream and event log, payments, and the
// harvested answers — into one comparable string, so the determinism test
// below is effectively byte-for-byte.
func fingerprint(res *sim.Result) string {
	s := fmt.Sprintf("rounds=%d finalized=%v cancelled=%v gas=%d reqbal=%d\n",
		res.Rounds, res.Finalized, res.Cancelled, res.GasTotal, res.RequesterBalance)
	for _, o := range res.Outcomes {
		s += fmt.Sprintf("outcome %s %s answers=%v q=%d revealed=%v paid=%v rejected=%v\n",
			o.Name, o.Addr, o.Answers, o.Quality, o.Revealed, o.Paid, o.Rejected)
	}
	for _, method := range []string{"deploy", "publish", "commit", "reveal", "golden", "outrange", "evaluate", "finalize"} {
		s += fmt.Sprintf("gas[%s]=%d\n", method, res.GasByMethod[method])
	}
	for _, rcpt := range res.Chain.Receipts() {
		s += fmt.Sprintf("rcpt r=%d from=%s method=%s gas=%d err=%v data=%x\n",
			rcpt.Round, rcpt.Tx.From, rcpt.Tx.Method, rcpt.GasUsed, rcpt.Err, rcpt.Tx.Data)
	}
	for _, ev := range res.Chain.Events() {
		s += fmt.Sprintf("event r=%d %s data=%x\n", ev.Round, ev.Name, ev.Data)
	}
	for _, o := range res.Outcomes {
		s += fmt.Sprintf("harvest %s=%v\n", o.Addr, res.HarvestedAnswers[o.Addr])
	}
	return s
}

// mixedConfig builds a workload that exercises every parallel code path:
// honest, inaccurate (shared rng), bot (same shared rng), out-of-range,
// no-reveal and copy-paste workers, so the run includes commits, reveals,
// VPKE out-of-range rejections and PoQoEA quality rejections.
func mixedConfig(t *testing.T, seed int64, parallelism int) sim.Config {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inst, err := task.Generate(task.GenerateParams{
		ID: "det", N: 40, RangeSize: 4, NumGolden: 8,
		Workers: 6, Threshold: 6, Budget: 6000,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	shared := rand.New(rand.NewSource(seed * 17))
	return sim.Config{
		Instance: inst,
		Group:    group.TestSchnorr(),
		Workers: []worker.Model{
			worker.Perfect("perfect", inst.GroundTruth),
			worker.Accurate("acc", inst.GroundTruth, 0.5, shared),
			worker.Bot("bot", shared),
			worker.OutOfRange("oor", inst.GroundTruth, 3, 99),
			worker.NoReveal("mute", inst.GroundTruth),
			worker.CopyPaster("copycat"),
		},
		Seed:    seed,
		Options: opts.Options{Parallelism: parallelism},
	}
}

// TestParallelRunMatchesSequential is the determinism regression test for
// the parallel execution layer: with the same seed, a run at full
// parallelism must reproduce a sequential (Parallelism=1) run exactly —
// same transactions, same gas, same events, same payments, same harvested
// answers. Run it under -race to also certify the fan-out is data-race
// free.
func TestParallelRunMatchesSequential(t *testing.T) {
	for _, seed := range []int64{1, 42, 2020} {
		seq, err := sim.Run(mixedConfig(t, seed, 1))
		if err != nil {
			t.Fatalf("seed %d sequential: %v", seed, err)
		}
		for _, parallelism := range []int{0, 2, 8} {
			par, err := sim.Run(mixedConfig(t, seed, parallelism))
			if err != nil {
				t.Fatalf("seed %d parallelism %d: %v", seed, parallelism, err)
			}
			fseq, fpar := fingerprint(seq), fingerprint(par)
			if fseq != fpar {
				t.Errorf("seed %d: parallelism %d diverged from sequential run\n--- sequential ---\n%s\n--- parallel ---\n%s",
					seed, parallelism, fseq, fpar)
			}
		}
	}
}

// TestParallelRunBN254 smoke-tests the parallel layer over the production
// curve as well (the paths differ: fixed-base tables, Jacobian arithmetic).
func TestParallelRunBN254(t *testing.T) {
	if testing.Short() {
		t.Skip("BN254 end-to-end run is slow")
	}
	rngSeq := rand.New(rand.NewSource(5))
	instSeq, err := task.Generate(task.GenerateParams{
		ID: "det-bn", N: 12, RangeSize: 2, NumGolden: 4,
		Workers: 2, Threshold: 4, Budget: 2000,
	}, rngSeq)
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallelism int) *sim.Result {
		res, err := sim.Run(sim.Config{
			Instance: instSeq,
			Group:    group.BN254G1(),
			Workers: []worker.Model{
				worker.Perfect("w0", instSeq.GroundTruth),
				worker.Accurate("w1", instSeq.GroundTruth, 0, rand.New(rand.NewSource(6))),
			},
			Seed:    5,
			Options: opts.Options{Parallelism: parallelism},
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return res
	}
	if fingerprint(run(1)) != fingerprint(run(0)) {
		t.Error("BN254 parallel run diverged from sequential run")
	}
}
