// Package sim is the end-to-end experiment harness: it wires the ledger,
// the simulated chain with a pluggable network adversary, off-chain storage,
// one requester client and a set of worker clients, runs the protocol to
// completion round by round, and reports payments, per-method gas usage and
// the requester's harvested answers. It also hosts the executable ideal
// functionality F_hit (ideal.go), which integration tests run
// differentially against the real protocol.
package sim

import (
	"context"
	"errors"
	"fmt"

	"dragoon/internal/chain"
	"dragoon/internal/contract"
	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/ledger"
	"dragoon/internal/parallel"
	"dragoon/internal/poqoea"
	"dragoon/internal/protocol"
	"dragoon/internal/swarm"
	"dragoon/internal/task"
	"dragoon/internal/worker"
)

// RequesterAddr is the requester's well-known ledger/chain identity.
const RequesterAddr chain.Address = "requester"

// Config configures one end-to-end protocol run.
type Config struct {
	// Instance is the task with its secrets.
	Instance *task.Instance
	// Group selects the crypto backend (BN254 G1 in production, the test
	// Schnorr group for fast tests).
	Group group.Group
	// Workers are the simulated workers, in arrival order.
	Workers []worker.Model
	// Scheduler is the network adversary (honest FIFO if nil).
	Scheduler chain.Scheduler
	// Policy is the requester's behaviour (honest if zero).
	Policy protocol.RequesterPolicy
	// RequesterKey optionally reuses one key pair across tasks (§VI); a
	// fresh pair is generated when nil.
	RequesterKey *elgamal.PrivateKey
	// Seed makes the run reproducible.
	Seed int64
	// WorkerBalance funds each worker's gas-free ledger account (workers
	// need no balance for the protocol itself; nonzero values just make
	// payment assertions easier to read).
	WorkerBalance ledger.Amount
	// MaxRounds bounds the run (default 40).
	MaxRounds int
	// CommitRounds bounds the commit phase (default 8).
	CommitRounds int
	// Parallelism bounds how many workers compute their off-chain round
	// work (answering, encrypting, committing) concurrently. 0 uses the
	// process default (runtime.NumCPU() unless overridden via
	// parallel.SetDefaultWorkers); 1 forces a fully sequential round.
	// Whatever the setting, the run is deterministic for a fixed Seed:
	// workers draw randomness from private per-worker streams and their
	// transactions are applied to the chain in worker order.
	Parallelism int
}

// WorkerOutcome reports one worker's fate.
type WorkerOutcome struct {
	Name     string
	Addr     chain.Address
	Answers  []int64 // plaintext answers (nil if never produced)
	Quality  int     // true quality (-1 if no answers)
	Revealed bool
	Paid     bool
	Rejected bool
}

// Result reports a full protocol run.
type Result struct {
	Outcomes []WorkerOutcome
	// GasByMethod aggregates gas per contract method ("deploy", "publish",
	// "commit", "reveal", "golden", "outrange", "evaluate", "finalize").
	GasByMethod map[string]uint64
	// GasTotal is the whole task's on-chain handling cost.
	GasTotal uint64
	// Rounds is the number of clock rounds the task took.
	Rounds int
	// Finalized / Cancelled report how the task ended.
	Finalized bool
	Cancelled bool
	// RequesterBalance is the requester's final ledger balance.
	RequesterBalance ledger.Amount
	// Ledger and Chain expose the final state for deeper assertions.
	Ledger *ledger.Ledger
	Chain  *chain.Chain
	// HarvestedAnswers is what the requester decrypted per worker.
	HarvestedAnswers map[chain.Address][]int64
}

// Run executes the protocol to completion.
func Run(cfg Config) (*Result, error) {
	if cfg.Instance == nil {
		return nil, errors.New("sim: no task instance")
	}
	if cfg.Group == nil {
		return nil, errors.New("sim: no group backend")
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 40
	}

	led := ledger.New()
	led.Mint(ledger.AccountID(RequesterAddr), cfg.Instance.Task.Budget*2)
	ch := chain.New(led, cfg.Scheduler)
	store := swarm.New()

	req, err := protocol.NewRequester(protocol.RequesterConfig{
		Addr:         RequesterAddr,
		Chain:        ch,
		Store:        store,
		Instance:     cfg.Instance,
		Policy:       cfg.Policy,
		Group:        cfg.Group,
		Key:          cfg.RequesterKey,
		CommitRounds: cfg.CommitRounds,
		Rand:         newDRBG(cfg.Seed, "requester"),
	})
	if err != nil {
		return nil, err
	}

	// Materialize every worker's answers once, so the real run and the
	// ideal functionality judge exactly the same inputs.
	answers := make([][]int64, len(cfg.Workers))
	clients := make([]*protocol.Worker, len(cfg.Workers))
	addrs := make([]chain.Address, len(cfg.Workers))
	for i, m := range cfg.Workers {
		addrs[i] = chain.Address(fmt.Sprintf("worker-%d-%s", i, m.Name))
		if cfg.WorkerBalance > 0 {
			led.Mint(ledger.AccountID(addrs[i]), cfg.WorkerBalance)
		}
		var fn protocol.AnswerFn
		if m.Answers != nil {
			i := i
			m := m
			fn = func(qs []task.Question, rangeSize int64) []int64 {
				if answers[i] == nil {
					answers[i] = m.Answers(qs, rangeSize)
				}
				return answers[i]
			}
		}
		w, err := protocol.NewWorker(protocol.WorkerConfig{
			Addr:       addrs[i],
			Chain:      ch,
			Store:      store,
			Group:      cfg.Group,
			ContractID: ledger.ContractID(cfg.Instance.Task.ID),
			Strategy:   m.Strategy,
			AnswerFn:   fn,
			Rand:       newDRBG(cfg.Seed, "worker-"+m.Name+fmt.Sprint(i)),
		})
		if err != nil {
			return nil, err
		}
		clients[i] = w
	}

	if err := req.Launch(); err != nil {
		return nil, err
	}

	res := &Result{
		GasByMethod:      make(map[string]uint64),
		Ledger:           led,
		Chain:            ch,
		HarvestedAnswers: make(map[chain.Address][]int64),
	}
	id := req.ContractID()
	for round := 0; round < cfg.MaxRounds; round++ {
		if err := req.Step(); err != nil {
			return nil, fmt.Errorf("sim: requester step (round %d): %w", round, err)
		}
		// Answer models may share one seeded rng across workers, so the
		// answering step runs sequentially in worker order first; the
		// heavy per-worker crypto then fans out below.
		for i, w := range clients {
			if err := w.Prepare(); err != nil {
				return nil, fmt.Errorf("sim: worker %d prepare (round %d): %w", i, round, err)
			}
		}
		// Workers compute their round work concurrently — each reads only
		// mined chain state and draws from its own randomness stream — and
		// the resulting transactions enter the mempool in worker order, so
		// the mined chain is identical to a sequential round.
		txsPerWorker, err := parallel.Map(context.Background(), len(clients), cfg.Parallelism,
			func(i int) ([]*chain.Tx, error) {
				txs, err := clients[i].StepTxs()
				if err != nil {
					return nil, fmt.Errorf("sim: worker %d step (round %d): %w", i, round, err)
				}
				return txs, nil
			})
		if err != nil {
			return nil, err
		}
		for _, txs := range txsPerWorker {
			for _, tx := range txs {
				ch.Submit(tx)
			}
		}
		if _, err := ch.MineRound(); err != nil {
			return nil, fmt.Errorf("sim: mining round %d: %w", round, err)
		}
		if phase := contract.CurrentPhase(ch, id, ch.Round()); phase == contract.PhaseDone || phase == contract.PhaseCancelled {
			res.Finalized = phase == contract.PhaseDone
			res.Cancelled = phase == contract.PhaseCancelled
			break
		}
	}
	res.Rounds = ch.Round()

	// Fold gas by method.
	for _, rcpt := range ch.Receipts() {
		if rcpt.Tx.Contract != id {
			continue
		}
		res.GasByMethod[rcpt.Tx.Method] += rcpt.GasUsed
		res.GasTotal += rcpt.GasUsed
	}

	// Worker outcomes from the public event log and the true answers.
	paid, rejected, revealed := outcomesFromEvents(ch, id)
	st := cfg.Instance.Golden.Statement(cfg.Instance.Task.RangeSize)
	for i, m := range cfg.Workers {
		o := WorkerOutcome{
			Name:     m.Name,
			Addr:     addrs[i],
			Answers:  answers[i],
			Quality:  -1,
			Revealed: revealed[addrs[i]],
			Paid:     paid[addrs[i]],
			Rejected: rejected[addrs[i]],
		}
		if answers[i] != nil {
			o.Quality = poqoea.Quality(answers[i], st)
		}
		res.Outcomes = append(res.Outcomes, o)
	}
	res.RequesterBalance = led.Balance(ledger.AccountID(RequesterAddr))

	if res.Finalized {
		harvested, err := req.Answers()
		if err != nil {
			return nil, fmt.Errorf("sim: harvesting answers: %w", err)
		}
		res.HarvestedAnswers = harvested
	}
	if err := led.CheckConservation(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return res, nil
}

// outcomesFromEvents extracts per-worker verdicts from the event log.
func outcomesFromEvents(ch *chain.Chain, id ledger.ContractID) (paid, rejected, revealed map[chain.Address]bool) {
	paid = make(map[chain.Address]bool)
	rejected = make(map[chain.Address]bool)
	revealed = make(map[chain.Address]bool)
	for _, ev := range ch.Events() {
		if ev.Contract != id {
			continue
		}
		switch ev.Name {
		case "paid":
			paid[chain.Address(ev.Data)] = true
		case "rejected":
			for i, b := range ev.Data {
				if b == 0 {
					rejected[chain.Address(ev.Data[:i])] = true
					break
				}
			}
		case "revealed":
			for i, b := range ev.Data {
				if b == 0 {
					revealed[chain.Address(ev.Data[:i])] = true
					break
				}
			}
		}
	}
	return paid, rejected, revealed
}

// IdealInputs derives the ideal-functionality inputs corresponding to a
// completed real run: the adversary's phase-2 choices (who participated,
// who revealed) are inputs to F_hit, while the payment verdicts are what
// the differential test compares.
func IdealInputs(res *Result) []IdealWorker {
	workers := make([]IdealWorker, 0, len(res.Outcomes))
	for _, o := range res.Outcomes {
		w := IdealWorker{Addr: o.Addr}
		if o.Revealed {
			w.Answers = o.Answers
		}
		workers = append(workers, w)
	}
	return workers
}
