// Package sim is the end-to-end experiment harness for a single task: it
// wires the ledger, the simulated chain with a pluggable network adversary,
// off-chain storage, one requester client and a set of worker clients, runs
// the protocol to completion round by round, and reports payments,
// per-method gas usage and the requester's harvested answers. A single-task
// run is exactly the M=1 case of the multi-task marketplace harness
// (package market), which this package delegates to. It also hosts the
// executable ideal functionality F_hit (ideal.go), which integration tests
// run differentially against the real protocol.
package sim

import (
	"context"
	"errors"

	"dragoon/internal/chain"
	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/ledger"
	"dragoon/internal/market"
	"dragoon/internal/opts"
	"dragoon/internal/protocol"
	"dragoon/internal/task"
	"dragoon/internal/worker"
)

// RequesterAddr is the requester's well-known ledger/chain identity.
const RequesterAddr chain.Address = "requester"

// Config configures one end-to-end protocol run.
type Config struct {
	// Instance is the task with its secrets.
	Instance *task.Instance
	// Group selects the crypto backend (BN254 G1 in production, the test
	// Schnorr group for fast tests).
	Group group.Group
	// Workers are the simulated workers, in arrival order.
	Workers []worker.Model
	// Scheduler is the network adversary (honest FIFO if nil).
	Scheduler chain.Scheduler
	// Policy is the requester's behaviour (honest if zero).
	Policy protocol.RequesterPolicy
	// RequesterKey optionally reuses one key pair across tasks (§VI); a
	// fresh pair is generated when nil.
	RequesterKey *elgamal.PrivateKey
	// Seed makes the run reproducible.
	Seed int64
	// WorkerBalance funds each worker's gas-free ledger account (workers
	// need no balance for the protocol itself; nonzero values just make
	// payment assertions easier to read).
	WorkerBalance ledger.Amount
	// MaxRounds bounds the run (default 40).
	MaxRounds int
	// CommitRounds bounds the commit phase (default 8).
	CommitRounds int
	// Options consolidates the run's execution knobs — Parallelism,
	// BatchVerify, ParallelExec. The embedded fields promote, so
	// cfg.Parallelism etc. read as before; see package opts for the
	// tri-state semantics. Whatever the settings, the run's transcript is
	// byte-identical for a fixed Seed.
	opts.Options
}

// WorkerOutcome reports one worker's fate.
type WorkerOutcome = market.WorkerOutcome

// Result reports a full protocol run.
type Result struct {
	Outcomes []WorkerOutcome
	// GasByMethod aggregates gas per contract method ("deploy", "publish",
	// "commit", "reveal", "golden", "outrange", "evaluate", "finalize").
	GasByMethod map[string]uint64
	// GasTotal is the whole task's on-chain handling cost.
	GasTotal uint64
	// Rounds is the number of clock rounds the task took.
	Rounds int
	// Finalized / Cancelled report how the task ended.
	Finalized bool
	Cancelled bool
	// RequesterBalance is the requester's final ledger balance.
	RequesterBalance ledger.Amount
	// Ledger and Chain expose the final state for deeper assertions.
	Ledger *ledger.Ledger
	Chain  *chain.Chain
	// HarvestedAnswers is what the requester decrypted per worker.
	HarvestedAnswers map[chain.Address][]int64
}

// Run executes the protocol to completion: one task, one contract, its
// workers — the M=1 marketplace.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: the context is checked between
// rounds, so a cancelled run returns promptly with ctx.Err().
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Instance == nil {
		return nil, errors.New("sim: no task instance")
	}
	if cfg.Group == nil {
		return nil, errors.New("sim: no group backend")
	}
	mres, err := market.RunContext(ctx, market.Config{
		Tasks: []market.TaskSpec{{
			Instance:     cfg.Instance,
			Policy:       cfg.Policy,
			Requester:    RequesterAddr,
			Key:          cfg.RequesterKey,
			Seed:         cfg.Seed,
			CommitRounds: cfg.CommitRounds,
		}},
		Group:         cfg.Group,
		Population:    cfg.Workers,
		Scheduler:     cfg.Scheduler,
		WorkerBalance: cfg.WorkerBalance,
		MaxRounds:     cfg.MaxRounds,
		Options:       cfg.Options,
	})
	if err != nil {
		return nil, err
	}
	t := &mres.Tasks[0]
	return &Result{
		Outcomes:         t.Outcomes,
		GasByMethod:      t.GasByMethod,
		GasTotal:         t.GasTotal,
		Rounds:           t.Rounds,
		Finalized:        t.Finalized,
		Cancelled:        t.Cancelled,
		RequesterBalance: t.RequesterBalance,
		Ledger:           mres.Ledger,
		Chain:            mres.Chain,
		HarvestedAnswers: t.HarvestedAnswers,
	}, nil
}

// IdealInputs derives the ideal-functionality inputs corresponding to a
// completed real run: the adversary's phase-2 choices (who participated,
// who revealed) are inputs to F_hit, while the payment verdicts are what
// the differential test compares.
func IdealInputs(res *Result) []IdealWorker {
	workers := make([]IdealWorker, 0, len(res.Outcomes))
	for _, o := range res.Outcomes {
		w := IdealWorker{Addr: o.Addr}
		if o.Revealed {
			w.Answers = o.Answers
		}
		workers = append(workers, w)
	}
	return workers
}
