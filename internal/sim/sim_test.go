package sim_test

import (
	"math/rand"
	"testing"

	"dragoon/internal/chain"
	"dragoon/internal/group"
	"dragoon/internal/ledger"
	"dragoon/internal/protocol"
	"dragoon/internal/sim"
	"dragoon/internal/task"
	"dragoon/internal/worker"
)

// smallInstance builds a quick 12-question task (3 golden standards,
// threshold 2) for protocol tests over the fast test group.
func smallInstance(t *testing.T, seed int64, workers int) *task.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inst, err := task.Generate(task.GenerateParams{
		ID:        "test-task",
		N:         12,
		RangeSize: 4,
		NumGolden: 3,
		Workers:   workers,
		Threshold: 2,
		Budget:    ledger.Amount(workers) * 100,
	}, rng)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return inst
}

func run(t *testing.T, cfg sim.Config) *sim.Result {
	t.Helper()
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return res
}

func TestHonestRunAllQualified(t *testing.T) {
	inst := smallInstance(t, 1, 3)
	res := run(t, sim.Config{
		Instance: inst,
		Group:    group.TestSchnorr(),
		Workers: []worker.Model{
			worker.Perfect("w0", inst.GroundTruth),
			worker.Perfect("w1", inst.GroundTruth),
			worker.Perfect("w2", inst.GroundTruth),
		},
		Seed: 1,
	})
	if !res.Finalized {
		t.Fatalf("task did not finalize in %d rounds", res.Rounds)
	}
	for _, o := range res.Outcomes {
		if !o.Paid {
			t.Errorf("qualified worker %s not paid (quality %d)", o.Name, o.Quality)
		}
		if got := res.Ledger.Balance(ledger.AccountID(o.Addr)); got != 100 {
			t.Errorf("worker %s balance = %d, want 100", o.Name, got)
		}
	}
	// Requester started with 2B = 600, deposited 300, paid out 300.
	if res.RequesterBalance != 300 {
		t.Errorf("requester balance = %d, want 300", res.RequesterBalance)
	}
	// The requester harvested everyone's answers.
	if len(res.HarvestedAnswers) != 3 {
		t.Fatalf("harvested %d submissions, want 3", len(res.HarvestedAnswers))
	}
	for addr, answers := range res.HarvestedAnswers {
		for i, a := range answers {
			if a != inst.GroundTruth[i] {
				t.Errorf("harvested answer %s[%d] = %d, want %d", addr, i, a, inst.GroundTruth[i])
			}
		}
	}
}

func TestHonestRunRejectsLowQuality(t *testing.T) {
	inst := smallInstance(t, 2, 3)
	rng := rand.New(rand.NewSource(7))
	res := run(t, sim.Config{
		Instance: inst,
		Group:    group.TestSchnorr(),
		Workers: []worker.Model{
			worker.Perfect("good", inst.GroundTruth),
			worker.Bot("bot", rng), // quality is random; likely < Θ
			worker.Perfect("good2", inst.GroundTruth),
		},
		Seed: 2,
	})
	if !res.Finalized {
		t.Fatalf("task did not finalize in %d rounds", res.Rounds)
	}
	for _, o := range res.Outcomes {
		wantPaid := o.Quality >= inst.Task.Threshold
		if o.Paid != wantPaid {
			t.Errorf("worker %s (quality %d, Θ=%d): paid=%v want %v",
				o.Name, o.Quality, inst.Task.Threshold, o.Paid, wantPaid)
		}
		if o.Rejected == o.Paid {
			t.Errorf("worker %s: rejected=%v paid=%v must be opposite", o.Name, o.Rejected, o.Paid)
		}
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	inst := smallInstance(t, 3, 2)
	res := run(t, sim.Config{
		Instance: inst,
		Group:    group.TestSchnorr(),
		Workers: []worker.Model{
			worker.OutOfRange("cheater", inst.GroundTruth, 5, 99),
			worker.Perfect("good", inst.GroundTruth),
		},
		Seed: 3,
	})
	if !res.Finalized {
		t.Fatal("task did not finalize")
	}
	byName := outcomesByName(res)
	if byName["cheater"].Paid {
		t.Error("out-of-range submission was paid")
	}
	if !byName["cheater"].Rejected {
		t.Error("out-of-range submission not rejected")
	}
	if !byName["good"].Paid {
		t.Error("good worker not paid")
	}
}

func TestNoRevealNotPaid(t *testing.T) {
	inst := smallInstance(t, 4, 2)
	res := run(t, sim.Config{
		Instance: inst,
		Group:    group.TestSchnorr(),
		Workers: []worker.Model{
			worker.NoReveal("ghost", inst.GroundTruth),
			worker.Perfect("good", inst.GroundTruth),
		},
		Seed: 4,
	})
	if !res.Finalized {
		t.Fatal("task did not finalize")
	}
	byName := outcomesByName(res)
	if byName["ghost"].Paid {
		t.Error("non-revealing worker was paid")
	}
	if !byName["good"].Paid {
		t.Error("good worker not paid")
	}
	// The ghost's share returned to the requester: initial 2B = 400, minus
	// the 200 deposit, plus the 100 refund.
	if res.RequesterBalance != 300 {
		t.Errorf("requester balance = %d, want 300", res.RequesterBalance)
	}
}

func TestCopyPasteAttackDefeated(t *testing.T) {
	inst := smallInstance(t, 5, 2)
	res := run(t, sim.Config{
		Instance: inst,
		Group:    group.TestSchnorr(),
		Workers: []worker.Model{
			worker.Perfect("victim", inst.GroundTruth),
			worker.CopyPaster("thief"),
			worker.Perfect("good", inst.GroundTruth),
		},
		Seed: 5,
	})
	if !res.Finalized {
		t.Fatal("task did not finalize")
	}
	byName := outcomesByName(res)
	if byName["thief"].Paid {
		t.Error("copy-paste attacker was paid")
	}
	if byName["thief"].Revealed {
		t.Error("copy-paste attacker got a commitment accepted")
	}
	if !byName["victim"].Paid || !byName["good"].Paid {
		t.Error("honest workers not paid despite copy-paste attempt")
	}
	// The thief's duplicate commitment must appear as a reverted tx.
	var sawRevertedDup bool
	for _, rcpt := range res.Chain.Receipts() {
		if rcpt.Tx.From == byName["thief"].Addr && rcpt.Reverted() {
			sawRevertedDup = true
		}
	}
	if !sawRevertedDup {
		t.Error("duplicate commitment was not rejected on-chain")
	}
}

func TestFalseReportingRequesterPays(t *testing.T) {
	inst := smallInstance(t, 6, 2)
	res := run(t, sim.Config{
		Instance: inst,
		Group:    group.TestSchnorr(),
		Workers: []worker.Model{
			worker.Perfect("w0", inst.GroundTruth),
			worker.Perfect("w1", inst.GroundTruth),
		},
		Policy: protocol.PolicyFalseReport,
		Seed:   6,
	})
	if !res.Finalized {
		t.Fatal("task did not finalize")
	}
	for _, o := range res.Outcomes {
		if !o.Paid {
			t.Errorf("worker %s cheated out of payment by false report", o.Name)
		}
	}
}

func TestSilentRequesterEveryonePaid(t *testing.T) {
	inst := smallInstance(t, 7, 2)
	rng := rand.New(rand.NewSource(9))
	res := run(t, sim.Config{
		Instance: inst,
		Group:    group.TestSchnorr(),
		Workers: []worker.Model{
			worker.Bot("bot", rng), // even a bot is paid if R stays silent
			worker.Perfect("good", inst.GroundTruth),
		},
		Policy: protocol.PolicySilent,
		Seed:   7,
	})
	if !res.Finalized {
		t.Fatal("task did not finalize")
	}
	for _, o := range res.Outcomes {
		if !o.Paid {
			t.Errorf("worker %s not paid under silent requester", o.Name)
		}
	}
}

func TestGoldenWithheldEveryonePaid(t *testing.T) {
	inst := smallInstance(t, 8, 2)
	rng := rand.New(rand.NewSource(10))
	res := run(t, sim.Config{
		Instance: inst,
		Group:    group.TestSchnorr(),
		Workers: []worker.Model{
			worker.Bot("bot", rng),
			worker.Perfect("good", inst.GroundTruth),
		},
		Policy: protocol.PolicyNoGolden,
		Seed:   8,
	})
	if !res.Finalized {
		t.Fatal("task did not finalize")
	}
	for _, o := range res.Outcomes {
		if !o.Paid {
			t.Errorf("worker %s not paid though golden standards were withheld", o.Name)
		}
	}
}

func TestUnderfilledTaskCancelledAndRefunded(t *testing.T) {
	inst := smallInstance(t, 9, 3) // wants 3 workers, only 1 shows up
	res := run(t, sim.Config{
		Instance: inst,
		Group:    group.TestSchnorr(),
		Workers: []worker.Model{
			worker.Perfect("only", inst.GroundTruth),
		},
		Seed:         9,
		CommitRounds: 4,
		MaxRounds:    20,
	})
	if !res.Cancelled {
		t.Fatal("underfilled task was not cancelled")
	}
	// Full refund: back to the initial 2B = 600.
	if res.RequesterBalance != 600 {
		t.Errorf("requester balance = %d, want full refund 600", res.RequesterBalance)
	}
	if err := res.Ledger.CheckConservation(); err != nil {
		t.Error(err)
	}
}

// Differential test against the ideal functionality: across many seeds and
// worker mixes, the real protocol's payment vector must equal F_hit's.
func TestRealMatchesIdeal(t *testing.T) {
	for seed := int64(20); seed < 28; seed++ {
		inst := smallInstance(t, seed, 3)
		rng := rand.New(rand.NewSource(seed * 31))
		models := []worker.Model{
			worker.Accurate("acc", inst.GroundTruth, 0.7, rng),
			worker.Bot("bot", rng),
			worker.Perfect("perfect", inst.GroundTruth),
		}
		res := run(t, sim.Config{
			Instance: inst,
			Group:    group.TestSchnorr(),
			Workers:  models,
			Seed:     seed,
		})
		if !res.Finalized {
			t.Fatalf("seed %d: task did not finalize", seed)
		}
		ideal := sim.RunIdeal(inst, sim.IdealInputs(res), protocol.PolicyHonest)
		for _, o := range res.Outcomes {
			if ideal.Paid[o.Addr] != o.Paid {
				t.Errorf("seed %d: worker %s: real paid=%v, ideal paid=%v (quality %d)",
					seed, o.Name, o.Paid, ideal.Paid[o.Addr], o.Quality)
			}
		}
	}
}

func TestAdversarialSchedulingPreservesFairness(t *testing.T) {
	inst := smallInstance(t, 30, 3)
	rng := rand.New(rand.NewSource(30))
	res := run(t, sim.Config{
		Instance: inst,
		Group:    group.TestSchnorr(),
		Workers: []worker.Model{
			worker.Perfect("w0", inst.GroundTruth),
			worker.Bot("bot", rng),
			worker.Perfect("w1", inst.GroundTruth),
		},
		Scheduler: chain.RushingScheduler{},
		Seed:      30,
		MaxRounds: 80,
	})
	if !res.Finalized {
		t.Fatalf("task did not finalize under adversarial scheduling (rounds=%d)", res.Rounds)
	}
	ideal := sim.RunIdeal(inst, sim.IdealInputs(res), protocol.PolicyHonest)
	for _, o := range res.Outcomes {
		if ideal.Paid[o.Addr] != o.Paid {
			t.Errorf("worker %s: real paid=%v, ideal paid=%v under rushing adversary",
				o.Name, o.Paid, ideal.Paid[o.Addr])
		}
	}
	if err := res.Ledger.CheckConservation(); err != nil {
		t.Error(err)
	}
}

// TestTargetedDelayOnRequesterPreservesFairness delays every requester
// transaction by the synchrony bound: the golden opening and evaluations
// still land inside their windows, so the fairness verdicts are unchanged.
func TestTargetedDelayOnRequesterPreservesFairness(t *testing.T) {
	inst := smallInstance(t, 31, 2)
	rng := rand.New(rand.NewSource(31))
	res := run(t, sim.Config{
		Instance: inst,
		Group:    group.TestSchnorr(),
		Workers: []worker.Model{
			worker.Perfect("good", inst.GroundTruth),
			worker.Bot("bot", rng),
		},
		Scheduler: chain.TargetedDelayScheduler{Victim: sim.RequesterAddr},
		Seed:      31,
		MaxRounds: 80,
	})
	if !res.Finalized {
		t.Fatalf("task did not finalize (rounds=%d)", res.Rounds)
	}
	ideal := sim.RunIdeal(inst, sim.IdealInputs(res), protocol.PolicyHonest)
	for _, o := range res.Outcomes {
		if ideal.Paid[o.Addr] != o.Paid {
			t.Errorf("worker %s: real paid=%v ideal paid=%v under targeted delay",
				o.Name, o.Paid, ideal.Paid[o.Addr])
		}
	}
}

// TestRandomizedSchedulesMatchIdeal fuzzes the network adversary: random
// reorderings and delays across seeds must never change a payment verdict
// relative to the ideal functionality.
func TestRandomizedSchedulesMatchIdeal(t *testing.T) {
	for seed := int64(40); seed < 48; seed++ {
		inst := smallInstance(t, seed, 3)
		rng := rand.New(rand.NewSource(seed))
		res := run(t, sim.Config{
			Instance: inst,
			Group:    group.TestSchnorr(),
			Workers: []worker.Model{
				worker.Perfect("w0", inst.GroundTruth),
				worker.Accurate("acc", inst.GroundTruth, 0.6, rng),
				worker.Bot("bot", rng),
			},
			Scheduler: &chain.RandomScheduler{
				Rng:              rand.New(rand.NewSource(seed * 7)),
				DelayProbability: 0.5,
			},
			Seed:      seed,
			MaxRounds: 100,
		})
		if !res.Finalized {
			t.Fatalf("seed %d: task did not finalize (rounds=%d)", seed, res.Rounds)
		}
		ideal := sim.RunIdeal(inst, sim.IdealInputs(res), protocol.PolicyHonest)
		for _, o := range res.Outcomes {
			if ideal.Paid[o.Addr] != o.Paid {
				t.Errorf("seed %d: worker %s real=%v ideal=%v", seed, o.Name, o.Paid, ideal.Paid[o.Addr])
			}
		}
	}
}

func outcomesByName(res *sim.Result) map[string]sim.WorkerOutcome {
	out := make(map[string]sim.WorkerOutcome, len(res.Outcomes))
	for _, o := range res.Outcomes {
		out[o.Name] = o
	}
	return out
}
