package swarm

// Store deletion and snapshot/restore — the off-chain storage half of a
// long-lived service's bounded, resumable state. A settled task's questions
// and reveals never need serving again, so the service deletes them; a
// restarting service restores the surviving content byte-for-byte (addresses
// are content digests, so the encoding carries only the content).

import (
	"bytes"
	"fmt"
	"sort"

	"dragoon/internal/wire"
)

// snapshotVersion guards the store snapshot encoding.
const snapshotVersion = 1

// Delete removes the content at d, if present. Deleting is how a service
// bounds the store: content published for a settled task is unreferenced once
// the task's contract is pruned.
func (s *Store) Delete(d Digest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, d)
}

// Snapshot encodes every stored object in deterministic (address-sorted)
// order. Addresses are not encoded — they are recomputed on restore.
func (s *Store) Snapshot() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	addrs := make([]Digest, 0, len(s.data))
	for d := range s.data {
		addrs = append(addrs, d)
	}
	sort.Slice(addrs, func(i, j int) bool { return bytes.Compare(addrs[i][:], addrs[j][:]) < 0 })
	w := wire.NewWriter()
	w.WriteUint(snapshotVersion)
	w.WriteUint(uint64(len(addrs)))
	for _, d := range addrs {
		w.WriteBytes(s.data[d])
	}
	return w.Bytes()
}

// Restore decodes a Snapshot into a fresh store.
func Restore(data []byte) (*Store, error) {
	r := wire.NewReader(data)
	v, err := r.ReadUint()
	if err != nil {
		return nil, fmt.Errorf("swarm: restore: %w", err)
	}
	if v != snapshotVersion {
		return nil, fmt.Errorf("swarm: restore: snapshot version %d, want %d", v, snapshotVersion)
	}
	n, err := r.ReadUint()
	if err != nil {
		return nil, fmt.Errorf("swarm: restore: object count: %w", err)
	}
	s := New()
	for i := uint64(0); i < n; i++ {
		content, err := r.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("swarm: restore: object %d: %w", i, err)
		}
		s.data[Address(content)] = content
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("swarm: restore: %w", err)
	}
	return s, nil
}
