// Package swarm simulates the off-chain content-addressed storage network
// the paper's deployment uses ("a Swarm API to publish the detailed
// questions of each crowdsourcing task ... the digest of the questions is
// committed in the contract, which significantly reduces on-chain cost,
// without violating securities", §VI). Content is addressed by its keccak256
// digest, so readers verify integrity against the on-chain commitment for
// free.
package swarm

import (
	"fmt"
	"sync"

	"dragoon/internal/keccak"
)

// Digest is a content address (keccak256 of the content).
type Digest [keccak.Size]byte

// Store is an in-process content-addressed store, safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	data map[Digest][]byte
}

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[Digest][]byte)}
}

// Address returns the content address content would be stored at, without
// storing it — what a party committing to (but withholding) content can
// compute offline.
func Address(content []byte) Digest {
	return Digest(keccak.Sum256(content))
}

// Put stores content and returns its address.
func (s *Store) Put(content []byte) Digest {
	d := Address(content)
	cp := make([]byte, len(content))
	copy(cp, content)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[d] = cp
	return d
}

// Get retrieves content by address, verifying integrity.
func (s *Store) Get(d Digest) ([]byte, error) {
	s.mu.RLock()
	content, ok := s.data[d]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("swarm: no content at %x", d[:8])
	}
	if Digest(keccak.Sum256(content)) != d {
		return nil, fmt.Errorf("swarm: integrity failure at %x", d[:8])
	}
	out := make([]byte, len(content))
	copy(out, content)
	return out, nil
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}
