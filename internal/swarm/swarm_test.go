package swarm_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"dragoon/internal/keccak"
	"dragoon/internal/swarm"
)

func TestPutGet(t *testing.T) {
	s := swarm.New()
	content := []byte("106 binary questions about images")
	d := s.Put(content)
	if d != swarm.Digest(keccak.Sum256(content)) {
		t.Error("digest is not keccak256 of content")
	}
	got, err := s.Get(d)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Error("content mismatch")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestGetMissing(t *testing.T) {
	s := swarm.New()
	if _, err := s.Get(swarm.Digest{1, 2, 3}); err == nil {
		t.Error("missing content returned without error")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := swarm.New()
	d := s.Put([]byte{1, 2, 3})
	got, err := s.Get(d)
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 99
	again, err := s.Get(d)
	if err != nil {
		t.Fatalf("mutating a returned buffer corrupted the store: %v", err)
	}
	if again[0] != 1 {
		t.Error("store content was mutated through a returned slice")
	}
}

func TestPutCopiesInput(t *testing.T) {
	s := swarm.New()
	content := []byte{7, 8, 9}
	d := s.Put(content)
	content[0] = 0
	if _, err := s.Get(d); err != nil {
		t.Errorf("mutating the input after Put corrupted the store: %v", err)
	}
}

func TestRoundtripQuick(t *testing.T) {
	s := swarm.New()
	f := func(content []byte) bool {
		got, err := s.Get(s.Put(content))
		return err == nil && bytes.Equal(got, content)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
