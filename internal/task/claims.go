package task

import (
	"fmt"
	"math/rand"

	"dragoon/internal/elgamal"
	"dragoon/internal/poqoea"
)

// ClaimParams shapes the synthetic quality claims GenerateClaims produces.
type ClaimParams struct {
	// N is the question count of each claim's task.
	N int
	// NumGolden is the golden-standard count per task.
	NumGolden int
	// Wrong is how many golden answers each claim answers incorrectly — and
	// therefore how many VPKE revelations each proof carries.
	Wrong int
	// RangeSize is the per-question option range (must be ≥ 2).
	RangeSize int64
}

// GenerateClaims builds n distinct synthetic PoQoEA quality claims under sk
// (distinct task, answers and ciphertexts per claim), each carrying
// p.Wrong VPKE revelations. It is the single source of the
// batch-verification benchmark workload — BenchmarkBatchVerify and
// `cmd/benchtables -json` measure exactly this fixture, so the committed
// batch_speedups in BENCH_parallel.json and the Go benchmark stay
// comparable.
func GenerateClaims(sk *elgamal.PrivateKey, n int, p ClaimParams, rng *rand.Rand) ([]poqoea.Claim, error) {
	claims := make([]poqoea.Claim, n)
	for i := range claims {
		inst, err := Generate(GenerateParams{
			ID: fmt.Sprintf("claim-%d", i), N: p.N, RangeSize: p.RangeSize,
			NumGolden: p.NumGolden, Workers: 1, Threshold: 1, Budget: 100,
		}, rng)
		if err != nil {
			return nil, err
		}
		st := inst.Golden.Statement(inst.Task.RangeSize)
		answers := append([]int64{}, inst.GroundTruth...)
		for _, gi := range inst.Golden.Indices[:p.Wrong] {
			answers[gi] = (answers[gi] + 1) % inst.Task.RangeSize
		}
		cts, err := poqoea.EncryptAnswers(&sk.PublicKey, answers, rng)
		if err != nil {
			return nil, err
		}
		chi, proof, err := poqoea.Prove(sk, cts, st, rng)
		if err != nil {
			return nil, err
		}
		claims[i] = poqoea.Claim{Cts: cts, Chi: chi, Proof: proof, Statement: st}
	}
	return claims, nil
}
