// Package task models Human Intelligence Tasks as the paper defines them
// (§IV): a batched sequence of N multiple-choice questions with answers in a
// small range, a hidden subset of |G| golden-standard questions with known
// answers Gs, a worker quota K, a quality threshold Θ, and a budget B paying
// B/K per accepted answer. It includes the generator for the paper's §VI
// evaluation workload — the ImageNet image-annotation HIT (106 binary
// questions, 6 golden standards, 4 workers, reject below 4 correct golden
// answers).
package task

import (
	"errors"
	"fmt"
	"math/rand"

	"dragoon/internal/ledger"
	"dragoon/internal/poqoea"
	"dragoon/internal/wire"
)

// Question is one multiple-choice question of a HIT.
type Question struct {
	// Text is the human-readable prompt (stored off-chain; only its digest
	// reaches the contract).
	Text string
	// Options are the answer choices; a valid answer indexes into them.
	Options []string
}

// Task is the public specification of a HIT.
type Task struct {
	// ID names the task (and its on-chain contract instance).
	ID string
	// Questions is the ordered question list (length N).
	Questions []Question
	// RangeSize is the number of options per question (|range|).
	RangeSize int64
	// Workers is the number of answers to collect (K).
	Workers int
	// Threshold is the minimal quality Θ for payment.
	Threshold int
	// Budget is the total reward pool B; each accepted worker earns B/K.
	Budget ledger.Amount
}

// N returns the number of questions.
func (t *Task) N() int { return len(t.Questions) }

// Reward returns the per-worker payment B/K.
func (t *Task) Reward() ledger.Amount {
	return t.Budget / ledger.Amount(t.Workers)
}

// Validate checks structural well-formedness of the task.
func (t *Task) Validate() error {
	if t.N() == 0 {
		return errors.New("task: no questions")
	}
	if t.RangeSize <= 1 {
		return fmt.Errorf("task: range size %d too small", t.RangeSize)
	}
	if t.Workers <= 0 {
		return fmt.Errorf("task: worker quota %d invalid", t.Workers)
	}
	if t.Budget == 0 || t.Reward() == 0 {
		return errors.New("task: budget does not cover one reward")
	}
	for i, q := range t.Questions {
		if int64(len(q.Options)) != t.RangeSize {
			return fmt.Errorf("task: question %d has %d options, want %d",
				i, len(q.Options), t.RangeSize)
		}
	}
	return nil
}

// Golden holds the requester's secret parameters sp = (G, Gs): the golden
// standard question indices and their ground-truth answers.
type Golden struct {
	Indices []int
	Answers []int64
}

// Statement lifts the golden standards into a PoQoEA statement.
func (g Golden) Statement(rangeSize int64) poqoea.Statement {
	return poqoea.Statement{
		GoldenIndices: append([]int{}, g.Indices...),
		GoldenAnswers: append([]int64{}, g.Answers...),
		RangeSize:     rangeSize,
	}
}

// Marshal encodes the golden standards (G ‖ Gs) for commitment and later
// public audit.
func (g Golden) Marshal() []byte {
	w := wire.NewWriter()
	w.WriteUint(uint64(len(g.Indices)))
	for _, idx := range g.Indices {
		w.WriteUint(uint64(idx))
	}
	for _, a := range g.Answers {
		w.WriteInt(a)
	}
	return w.Bytes()
}

// UnmarshalGolden decodes golden standards encoded by Marshal.
func UnmarshalGolden(data []byte) (Golden, error) {
	r := wire.NewReader(data)
	n, err := r.ReadUint()
	if err != nil {
		return Golden{}, fmt.Errorf("task: decoding golden count: %w", err)
	}
	if n > 1<<20 {
		return Golden{}, fmt.Errorf("task: absurd golden count %d", n)
	}
	g := Golden{Indices: make([]int, n), Answers: make([]int64, n)}
	for i := range g.Indices {
		v, err := r.ReadUint()
		if err != nil {
			return Golden{}, fmt.Errorf("task: decoding golden index: %w", err)
		}
		g.Indices[i] = int(v)
	}
	for i := range g.Answers {
		v, err := r.ReadInt()
		if err != nil {
			return Golden{}, fmt.Errorf("task: decoding golden answer: %w", err)
		}
		g.Answers[i] = v
	}
	if err := r.Done(); err != nil {
		return Golden{}, fmt.Errorf("task: golden encoding: %w", err)
	}
	return g, nil
}

// MarshalQuestions encodes the question list for off-chain (Swarm) storage;
// the contract commits only to its digest.
func (t *Task) MarshalQuestions() []byte {
	w := wire.NewWriter()
	w.WriteUint(uint64(len(t.Questions)))
	for _, q := range t.Questions {
		w.WriteString(q.Text)
		w.WriteUint(uint64(len(q.Options)))
		for _, o := range q.Options {
			w.WriteString(o)
		}
	}
	return w.Bytes()
}

// UnmarshalQuestions decodes a question list from off-chain storage.
func UnmarshalQuestions(data []byte) ([]Question, error) {
	r := wire.NewReader(data)
	n, err := r.ReadUint()
	if err != nil {
		return nil, fmt.Errorf("task: decoding question count: %w", err)
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("task: absurd question count %d", n)
	}
	qs := make([]Question, n)
	for i := range qs {
		text, err := r.ReadString()
		if err != nil {
			return nil, fmt.Errorf("task: decoding question %d: %w", i, err)
		}
		opts, err := r.ReadUint()
		if err != nil {
			return nil, fmt.Errorf("task: decoding option count %d: %w", i, err)
		}
		if opts > 1<<16 {
			return nil, fmt.Errorf("task: absurd option count %d", opts)
		}
		q := Question{Text: text, Options: make([]string, opts)}
		for j := range q.Options {
			if q.Options[j], err = r.ReadString(); err != nil {
				return nil, fmt.Errorf("task: decoding option: %w", err)
			}
		}
		qs[i] = q
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("task: question encoding: %w", err)
	}
	return qs, nil
}

// Instance bundles a task with its secrets for simulation: the golden
// standards and a hidden full ground truth (what a perfectly informed
// worker would answer), which worker behaviour models perturb.
type Instance struct {
	Task        Task
	Golden      Golden
	GroundTruth []int64
}

// GenerateParams configures the synthetic task generator.
type GenerateParams struct {
	ID         string
	N          int
	RangeSize  int64
	NumGolden  int
	Workers    int
	Threshold  int
	Budget     ledger.Amount
	QuestionFn func(i int) Question // optional custom question content
}

// Generate builds a random task instance from rng (deterministic for a
// seeded rng, so experiments are reproducible).
func Generate(p GenerateParams, rng *rand.Rand) (*Instance, error) {
	if p.NumGolden <= 0 || p.NumGolden > p.N {
		return nil, fmt.Errorf("task: golden count %d out of range", p.NumGolden)
	}
	inst := &Instance{
		Task: Task{
			ID:        p.ID,
			RangeSize: p.RangeSize,
			Workers:   p.Workers,
			Threshold: p.Threshold,
			Budget:    p.Budget,
		},
	}
	qfn := p.QuestionFn
	if qfn == nil {
		qfn = func(i int) Question {
			opts := make([]string, p.RangeSize)
			for j := range opts {
				opts[j] = fmt.Sprintf("option-%d", j)
			}
			return Question{Text: fmt.Sprintf("question #%d", i), Options: opts}
		}
	}
	inst.Task.Questions = make([]Question, p.N)
	inst.GroundTruth = make([]int64, p.N)
	for i := 0; i < p.N; i++ {
		inst.Task.Questions[i] = qfn(i)
		inst.GroundTruth[i] = int64(rng.Intn(int(p.RangeSize)))
	}
	for _, idx := range rng.Perm(p.N)[:p.NumGolden] {
		inst.Golden.Indices = append(inst.Golden.Indices, idx)
		inst.Golden.Answers = append(inst.Golden.Answers, inst.GroundTruth[idx])
	}
	if err := inst.Task.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}

// NewImageNet generates the paper's §VI evaluation task: "each task is made
// of 106 binary questions, 100 out of which are non-gold-standard questions,
// while the remaining 6 questions are requester's gold-standard challenges;
// 4 workers are allowed to participate; if a worker cannot correctly answer
// at least four golden standard questions, his submission will be rejected".
func NewImageNet(budget ledger.Amount, rng *rand.Rand) (*Instance, error) {
	return Generate(GenerateParams{
		ID:        "imagenet-annotation",
		N:         106,
		RangeSize: 2,
		NumGolden: 6,
		Workers:   4,
		Threshold: 4,
		Budget:    budget,
		QuestionFn: func(i int) Question {
			return Question{
				Text:    fmt.Sprintf("Does image #%04d contain the target attribute?", i),
				Options: []string{"no", "yes"},
			}
		},
	}, rng)
}
