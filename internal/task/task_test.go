package task_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dragoon/internal/poqoea"
	"dragoon/internal/task"
)

func TestGenerateImageNet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst, err := task.NewImageNet(4000, rng)
	if err != nil {
		t.Fatalf("NewImageNet: %v", err)
	}
	tk := &inst.Task
	if tk.N() != 106 {
		t.Errorf("N = %d, want 106", tk.N())
	}
	if tk.RangeSize != 2 || tk.Workers != 4 || tk.Threshold != 4 {
		t.Errorf("params = (%d,%d,%d), want (2,4,4)", tk.RangeSize, tk.Workers, tk.Threshold)
	}
	if len(inst.Golden.Indices) != 6 {
		t.Errorf("|G| = %d, want 6", len(inst.Golden.Indices))
	}
	if tk.Reward() != 1000 {
		t.Errorf("reward = %d, want 1000", tk.Reward())
	}
	if err := tk.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Golden answers must match the ground truth.
	for j, idx := range inst.Golden.Indices {
		if inst.Golden.Answers[j] != inst.GroundTruth[idx] {
			t.Errorf("golden answer %d mismatches ground truth", j)
		}
	}
	// The statement must be valid for PoQoEA.
	if err := inst.Golden.Statement(tk.RangeSize).Validate(tk.N()); err != nil {
		t.Errorf("Statement: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := task.NewImageNet(4000, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := task.NewImageNet(4000, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.GroundTruth {
		if a.GroundTruth[i] != b.GroundTruth[i] {
			t.Fatal("same seed produced different ground truth")
		}
	}
}

func TestGoldenMarshalRoundtrip(t *testing.T) {
	g := task.Golden{Indices: []int{3, 17, 42}, Answers: []int64{1, 0, 1}}
	dec, err := task.UnmarshalGolden(g.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalGolden: %v", err)
	}
	if len(dec.Indices) != 3 || dec.Indices[1] != 17 || dec.Answers[2] != 1 {
		t.Errorf("roundtrip mismatch: %+v", dec)
	}
	if _, err := task.UnmarshalGolden(g.Marshal()[:2]); err == nil {
		t.Error("truncated golden accepted")
	}
	if _, err := task.UnmarshalGolden(append(g.Marshal(), 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestQuestionsMarshalRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst, err := task.NewImageNet(4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	enc := inst.Task.MarshalQuestions()
	qs, err := task.UnmarshalQuestions(enc)
	if err != nil {
		t.Fatalf("UnmarshalQuestions: %v", err)
	}
	if len(qs) != 106 {
		t.Fatalf("decoded %d questions", len(qs))
	}
	if qs[5].Text != inst.Task.Questions[5].Text || qs[5].Options[1] != "yes" {
		t.Errorf("question 5 mismatch: %+v", qs[5])
	}
	if _, err := task.UnmarshalQuestions(enc[:len(enc)/2]); err == nil {
		t.Error("truncated questions accepted")
	}
}

func TestValidateRejectsBadTasks(t *testing.T) {
	good := task.Task{
		ID:        "x",
		Questions: []task.Question{{Text: "q", Options: []string{"a", "b"}}},
		RangeSize: 2, Workers: 1, Threshold: 0, Budget: 10,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good task rejected: %v", err)
	}
	cases := map[string]func(*task.Task){
		"no questions":    func(t *task.Task) { t.Questions = nil },
		"tiny range":      func(t *task.Task) { t.RangeSize = 1 },
		"zero workers":    func(t *task.Task) { t.Workers = 0 },
		"zero budget":     func(t *task.Task) { t.Budget = 0 },
		"budget too thin": func(t *task.Task) { t.Workers = 100; t.Budget = 50 },
		"option mismatch": func(t *task.Task) { t.Questions[0].Options = []string{"a"} },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			bad := good
			bad.Questions = append([]task.Question{}, good.Questions...)
			mutate(&bad)
			if err := bad.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestGenerateGoldenSubsetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst, err := task.Generate(task.GenerateParams{
			ID: "p", N: 20, RangeSize: 3, NumGolden: 5, Workers: 2,
			Threshold: 3, Budget: 100,
		}, rng)
		if err != nil {
			return false
		}
		// Golden indices distinct and in range; perfect ground truth scores |G|.
		seen := map[int]bool{}
		for _, idx := range inst.Golden.Indices {
			if idx < 0 || idx >= 20 || seen[idx] {
				return false
			}
			seen[idx] = true
		}
		st := inst.Golden.Statement(3)
		return poqoea.Quality(inst.GroundTruth, st) == 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGenerateRejectsBadGoldenCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := task.Generate(task.GenerateParams{N: 5, NumGolden: 6, RangeSize: 2, Workers: 1, Budget: 10}, rng); err == nil {
		t.Error("golden count > N accepted")
	}
	if _, err := task.Generate(task.GenerateParams{N: 5, NumGolden: 0, RangeSize: 2, Workers: 1, Budget: 10}, rng); err == nil {
		t.Error("zero golden accepted")
	}
}
