package vpke_test

import (
	"testing"

	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/vpke"
)

// Proofs must be bound to the public key: a proof generated under one key
// pair must not verify against another requester's key, even for the same
// plaintext (the Fiat–Shamir challenge binds h).
func TestProofBoundToPublicKey(t *testing.T) {
	g := group.TestSchnorr()
	sk1 := setup(t, g)
	sk2 := setup(t, g)
	ct, _, err := sk1.Encrypt(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, pi, err := vpke.Prove(sk1, ct, rangeSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !vpke.VerifyValue(&sk1.PublicKey, 1, ct, pi) {
		t.Fatal("honest proof rejected under own key")
	}
	if vpke.VerifyValue(&sk2.PublicKey, 1, ct, pi) {
		t.Error("proof transplanted across public keys accepted")
	}
}

// Re-randomizing the ciphertext invalidates its proof: the challenge binds
// (c1, c2) exactly.
func TestProofBoundToRandomness(t *testing.T) {
	g := group.TestSchnorr()
	sk := setup(t, g)
	ct, _, err := sk.Encrypt(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, pi, err := vpke.Prove(sk, ct, rangeSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := sk.Rerandomize(ct, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vpke.VerifyValue(&sk.PublicKey, 2, ct2, pi) {
		t.Error("proof survived ciphertext re-randomization")
	}
}

// A proof with swapped A/B components must not verify (component ordering
// is part of the statement, not a convention).
func TestProofComponentsNotInterchangeable(t *testing.T) {
	g := group.TestSchnorr()
	sk := setup(t, g)
	ct, _, err := sk.Encrypt(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, pi, err := vpke.Prove(sk, ct, rangeSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	swapped := &vpke.Proof{A: pi.B, B: pi.A, Z: pi.Z}
	if vpke.VerifyValue(&sk.PublicKey, 0, ct, swapped) {
		t.Error("A/B-swapped proof accepted")
	}
	_ = elgamal.Ciphertext{}
}
