// Package vpke implements the paper's verifiable public-key encryption —
// concretely, verifiable decryption of exponential ElGamal (§V-C). The
// decryptor proves, non-interactively, that a ciphertext (c1, c2) decrypts
// to a claimed plaintext, via a Schnorr-style proof for the Diffie–Hellman
// tuple (g, h, c1, c2/g^m) with the Fiat–Shamir transform in the random
// oracle model (H = keccak256):
//
//	Prove:  x ←$ Z_r, A = c1^x, B = g^x,
//	        C = H(A ‖ B ‖ g ‖ h ‖ c1 ‖ c2 ‖ g^m), Z = x + k·C
//	Verify: g^(m·C)·c1^Z ≟ A·c2^C   and   g^Z ≟ B·h^C
//
// When the plaintext lies outside the answer range, the prover reveals the
// group element M = g^m instead and the verifier substitutes M for g^m in
// both the hash and the first equation — the second branch of the paper's
// VerifyPKE. The proof is zero-knowledge (simulatable given only public
// values) and sound under the discrete-log assumption in the ROM.
package vpke

import (
	"fmt"
	"io"
	"math/big"

	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/keccak"
)

// Proof is a non-interactive proof of correct decryption.
type Proof struct {
	A, B group.Element
	Z    *big.Int
}

// Prove decrypts ct (trying the short range [0, rangeSize)) and produces a
// proof of correct decryption. It returns the plaintext (integer or bare
// group element, per elgamal.Plaintext) along with the proof.
func Prove(sk *elgamal.PrivateKey, ct elgamal.Ciphertext, rangeSize int64, rnd io.Reader) (elgamal.Plaintext, *Proof, error) {
	x, err := group.RandomScalar(sk.Group, rnd)
	if err != nil {
		return elgamal.Plaintext{}, nil, fmt.Errorf("vpke: sampling nonce: %w", err)
	}
	plain, pi := ProveWithNonce(sk, ct, rangeSize, x)
	return plain, pi, nil
}

// ProveWithNonce is Prove with a caller-supplied Schnorr nonce x. Batch
// provers (PoQoEA over many golden standards) draw their nonces sequentially
// from one randomness stream and then run the expensive decryptions and
// group operations concurrently; given the same nonce, the output transcript
// is identical to Prove's.
func ProveWithNonce(sk *elgamal.PrivateKey, ct elgamal.Ciphertext, rangeSize int64, x *big.Int) (elgamal.Plaintext, *Proof) {
	g := sk.Group
	plain := sk.Decrypt(ct, rangeSize)

	a := g.ScalarMul(ct.C1, x)
	b := g.ScalarBaseMul(x)
	c := challenge(g, a, b, sk.H, ct, plain.Element)
	// Z = x + k·C mod r.
	z := new(big.Int).Mul(sk.K, c)
	z.Add(z, x)
	z.Mod(z, g.Order())
	return plain, &Proof{A: a, B: b, Z: z}
}

// VerifyValue checks that ct decrypts to the in-range integer m.
func VerifyValue(pk *elgamal.PublicKey, m int64, ct elgamal.Ciphertext, pi *Proof) bool {
	if m < 0 {
		return false
	}
	gm := pk.Group.ScalarBaseMul(big.NewInt(m))
	return VerifyElement(pk, gm, ct, pi)
}

// VerifyElement checks that ct decrypts to the (possibly out-of-range) group
// element gm = g^m. This is the second branch of the paper's VerifyPKE; the
// first branch (VerifyValue) reduces to it by lifting m to g^m.
func VerifyElement(pk *elgamal.PublicKey, gm group.Element, ct elgamal.Ciphertext, pi *Proof) bool {
	g := pk.Group
	if !ValidShape(g, pi) {
		return false
	}
	c := challenge(g, pi.A, pi.B, pk.H, ct, gm)

	// Equation 1: gm^C · c1^Z ≟ A · c2^C.
	lhs1 := g.Add(g.ScalarMul(gm, c), g.ScalarMul(ct.C1, pi.Z))
	rhs1 := g.Add(pi.A, g.ScalarMul(ct.C2, c))
	if !g.Equal(lhs1, rhs1) {
		return false
	}
	// Equation 2: g^Z ≟ B · h^C.
	lhs2 := g.ScalarBaseMul(pi.Z)
	rhs2 := g.Add(pi.B, pk.MulH(c))
	return g.Equal(lhs2, rhs2)
}

// ChallengeFor recomputes the Fiat–Shamir challenge of a proof transcript —
// C = H(A ‖ B ‖ g ‖ h ‖ c1 ‖ c2 ‖ g^m) reduced into the scalar field — for
// verifiers that need the challenge value itself rather than the verdict.
// Batch verification (package batch) folds many proofs' two equations into
// one multi-scalar multiplication and needs every C_i as a fold scalar. The
// proof must be shape-valid (see ValidShape); h is the verifier public key
// the ciphertext was encrypted under.
func ChallengeFor(g group.Group, h group.Element, gm group.Element, ct elgamal.Ciphertext, pi *Proof) *big.Int {
	return challenge(g, pi.A, pi.B, h, ct, gm)
}

// ValidShape reports whether a proof is structurally well-formed: all fields
// present and the response Z a canonical scalar in [0, order). It is the
// exact structural precondition VerifyElement enforces before its two
// verification equations, exported so batch verifiers reject malformed
// proofs identically to the per-proof path.
func ValidShape(g group.Group, pi *Proof) bool {
	if pi == nil || pi.A == nil || pi.B == nil || pi.Z == nil {
		return false
	}
	return pi.Z.Sign() >= 0 && pi.Z.Cmp(g.Order()) < 0
}

// challenge derives the Fiat–Shamir challenge
// C = H(A ‖ B ‖ g ‖ h ‖ c1 ‖ c2 ‖ g^m) reduced into the scalar field.
func challenge(g group.Group, a, b, h group.Element, ct elgamal.Ciphertext, gm group.Element) *big.Int {
	digest := keccak.Sum256Concat(
		g.Marshal(a),
		g.Marshal(b),
		g.Marshal(g.Generator()),
		g.Marshal(h),
		g.Marshal(ct.C1),
		g.Marshal(ct.C2),
		g.Marshal(gm),
	)
	c := new(big.Int).SetBytes(digest[:])
	return c.Mod(c, g.Order())
}

// MarshalProof encodes a proof as A ‖ B ‖ Z (Z as a 32-byte big-endian
// scalar).
func MarshalProof(g group.Group, pi *Proof) []byte {
	out := make([]byte, 0, 2*g.ElementLen()+32)
	out = append(out, g.Marshal(pi.A)...)
	out = append(out, g.Marshal(pi.B)...)
	z := make([]byte, 32)
	pi.Z.FillBytes(z)
	return append(out, z...)
}

// UnmarshalProof decodes a proof produced by MarshalProof.
func UnmarshalProof(g group.Group, data []byte) (*Proof, error) {
	n := g.ElementLen()
	if len(data) != 2*n+32 {
		return nil, fmt.Errorf("vpke: bad proof length %d", len(data))
	}
	a, err := g.Unmarshal(data[:n])
	if err != nil {
		return nil, fmt.Errorf("vpke: decoding A: %w", err)
	}
	b, err := g.Unmarshal(data[n : 2*n])
	if err != nil {
		return nil, fmt.Errorf("vpke: decoding B: %w", err)
	}
	return &Proof{A: a, B: b, Z: new(big.Int).SetBytes(data[2*n:])}, nil
}

// SimulateProof produces a proof transcript for the statement "ct decrypts
// to gm" WITHOUT the private key, by programming the challenge: it samples
// (C, Z) and solves for (A, B). The output verifies under a verifier that
// accepts the embedded challenge; it exists to demonstrate (and test) the
// zero-knowledge property — transcripts are simulatable from public data —
// not for production use (the Fiat–Shamir hash cannot actually be
// programmed, so SimulateProof outputs fail VerifyElement, which tests
// assert).
func SimulateProof(pk *elgamal.PublicKey, gm group.Element, ct elgamal.Ciphertext, rnd io.Reader) (*Proof, *big.Int, error) {
	g := pk.Group
	c, err := group.RandomScalar(g, rnd)
	if err != nil {
		return nil, nil, fmt.Errorf("vpke: simulating: %w", err)
	}
	z, err := group.RandomScalar(g, rnd)
	if err != nil {
		return nil, nil, fmt.Errorf("vpke: simulating: %w", err)
	}
	// Solve the verification equations for A and B:
	// A = gm^C·c1^Z·c2^(−C), B = g^Z·h^(−C).
	a := g.Add(g.ScalarMul(gm, c), g.ScalarMul(ct.C1, z))
	a = group.Sub(g, a, g.ScalarMul(ct.C2, c))
	b := group.Sub(g, g.ScalarBaseMul(z), pk.MulH(c))
	return &Proof{A: a, B: b, Z: z}, c, nil
}

// VerifyWithChallenge runs the verification equations against an explicit
// challenge instead of the Fiat–Shamir hash. It is used by tests of the
// zero-knowledge property (interactive-verifier form).
func VerifyWithChallenge(pk *elgamal.PublicKey, gm group.Element, ct elgamal.Ciphertext, pi *Proof, c *big.Int) bool {
	g := pk.Group
	lhs1 := g.Add(g.ScalarMul(gm, c), g.ScalarMul(ct.C1, pi.Z))
	rhs1 := g.Add(pi.A, g.ScalarMul(ct.C2, c))
	if !g.Equal(lhs1, rhs1) {
		return false
	}
	lhs2 := g.ScalarBaseMul(pi.Z)
	rhs2 := g.Add(pi.B, pk.MulH(c))
	return g.Equal(lhs2, rhs2)
}
