package vpke_test

import (
	"math/big"
	"testing"
	"testing/quick"

	"dragoon/internal/elgamal"
	"dragoon/internal/group"
	"dragoon/internal/vpke"
)

const rangeSize = 4

func setup(t *testing.T, g group.Group) *elgamal.PrivateKey {
	t.Helper()
	sk, err := elgamal.KeyGen(g, nil)
	if err != nil {
		t.Fatalf("KeyGen: %v", err)
	}
	return sk
}

func TestCompleteness(t *testing.T) {
	for _, g := range []group.Group{group.TestSchnorr(), group.BN254G1()} {
		t.Run(g.Name(), func(t *testing.T) {
			sk := setup(t, g)
			for m := int64(0); m < rangeSize; m++ {
				ct, _, err := sk.Encrypt(m, nil)
				if err != nil {
					t.Fatal(err)
				}
				plain, pi, err := vpke.Prove(sk, ct, rangeSize, nil)
				if err != nil {
					t.Fatalf("Prove: %v", err)
				}
				if !plain.InRange || plain.Value != m {
					t.Fatalf("Prove decrypted %+v, want %d", plain, m)
				}
				if !vpke.VerifyValue(&sk.PublicKey, m, ct, pi) {
					t.Errorf("honest proof for m=%d rejected", m)
				}
			}
		})
	}
}

func TestCompletenessOutOfRange(t *testing.T) {
	g := group.TestSchnorr()
	sk := setup(t, g)
	const m = 99 // outside [0, rangeSize)
	ct, _, err := sk.Encrypt(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, pi, err := vpke.Prove(sk, ct, rangeSize, nil)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if plain.InRange {
		t.Fatalf("plaintext %d reported in range", m)
	}
	if !vpke.VerifyElement(&sk.PublicKey, plain.Element, ct, pi) {
		t.Error("honest out-of-range proof rejected")
	}
	// And the element branch must identify g^m.
	if !g.Equal(plain.Element, g.ScalarBaseMul(big.NewInt(m))) {
		t.Error("revealed element is not g^m")
	}
}

// Soundness: a proof for the true plaintext must not verify against any
// other claimed plaintext.
func TestSoundnessWrongPlaintext(t *testing.T) {
	g := group.TestSchnorr()
	sk := setup(t, g)
	ct, _, err := sk.Encrypt(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, pi, err := vpke.Prove(sk, ct, rangeSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	for m := int64(0); m < rangeSize; m++ {
		if m == 2 {
			continue
		}
		if vpke.VerifyValue(&sk.PublicKey, m, ct, pi) {
			t.Errorf("proof for 2 accepted for claimed plaintext %d", m)
		}
	}
}

// Soundness: a proof is bound to its ciphertext.
func TestSoundnessWrongCiphertext(t *testing.T) {
	g := group.TestSchnorr()
	sk := setup(t, g)
	ct1, _, err := sk.Encrypt(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct2, _, err := sk.Encrypt(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, pi, err := vpke.Prove(sk, ct1, rangeSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vpke.VerifyValue(&sk.PublicKey, 1, ct2, pi) {
		t.Error("proof transplanted across ciphertexts accepted")
	}
}

// Soundness: mangled proof components must be rejected.
func TestSoundnessMangledProof(t *testing.T) {
	g := group.TestSchnorr()
	sk := setup(t, g)
	ct, _, err := sk.Encrypt(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, pi, err := vpke.Prove(sk, ct, rangeSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	mangled := *pi
	mangled.Z = new(big.Int).Add(pi.Z, big.NewInt(1))
	if vpke.VerifyValue(&sk.PublicKey, 3, ct, &mangled) {
		t.Error("mangled Z accepted")
	}
	mangled = *pi
	mangled.A = g.Generator()
	if vpke.VerifyValue(&sk.PublicKey, 3, ct, &mangled) {
		t.Error("mangled A accepted")
	}
	mangled = *pi
	mangled.Z = new(big.Int).Add(pi.Z, g.Order()) // out of scalar range
	if vpke.VerifyValue(&sk.PublicKey, 3, ct, &mangled) {
		t.Error("out-of-range Z accepted")
	}
	if vpke.VerifyValue(&sk.PublicKey, 3, ct, nil) {
		t.Error("nil proof accepted")
	}
}

func TestSoundnessQuick(t *testing.T) {
	g := group.TestSchnorr()
	sk := setup(t, g)
	f := func(mRaw, claimRaw uint8) bool {
		m := int64(mRaw % rangeSize)
		claim := int64(claimRaw % rangeSize)
		ct, _, err := sk.Encrypt(m, nil)
		if err != nil {
			return false
		}
		_, pi, err := vpke.Prove(sk, ct, rangeSize, nil)
		if err != nil {
			return false
		}
		got := vpke.VerifyValue(&sk.PublicKey, claim, ct, pi)
		return got == (claim == m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Zero-knowledge: transcripts with programmable challenges are perfectly
// simulatable from public data; and the simulated transcript must NOT pass
// the Fiat–Shamir verifier (the hash cannot be programmed), confirming the
// simulation is meaningful.
func TestZeroKnowledgeSimulation(t *testing.T) {
	g := group.TestSchnorr()
	sk := setup(t, g)
	ct, _, err := sk.Encrypt(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	gm := g.ScalarBaseMul(big.NewInt(1))
	pi, c, err := vpke.SimulateProof(&sk.PublicKey, gm, ct, nil)
	if err != nil {
		t.Fatalf("SimulateProof: %v", err)
	}
	if !vpke.VerifyWithChallenge(&sk.PublicKey, gm, ct, pi, c) {
		t.Error("simulated transcript fails its own challenge equations")
	}
	if vpke.VerifyElement(&sk.PublicKey, gm, ct, pi) {
		t.Error("simulated transcript passed the Fiat–Shamir verifier")
	}
}

func TestProofMarshalRoundtrip(t *testing.T) {
	for _, g := range []group.Group{group.TestSchnorr(), group.BN254G1()} {
		t.Run(g.Name(), func(t *testing.T) {
			sk := setup(t, g)
			ct, _, err := sk.Encrypt(2, nil)
			if err != nil {
				t.Fatal(err)
			}
			_, pi, err := vpke.Prove(sk, ct, rangeSize, nil)
			if err != nil {
				t.Fatal(err)
			}
			enc := vpke.MarshalProof(g, pi)
			dec, err := vpke.UnmarshalProof(g, enc)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if !vpke.VerifyValue(&sk.PublicKey, 2, ct, dec) {
				t.Error("roundtripped proof rejected")
			}
			if _, err := vpke.UnmarshalProof(g, enc[:len(enc)-1]); err == nil {
				t.Error("expected length error")
			}
		})
	}
}
