package wire

import (
	"bytes"
	"testing"
)

// FuzzReaderOps drives the Reader over arbitrary input with an op stream
// derived from the input itself: whatever the bytes, decoding must return
// values or errors — never panic, never read out of bounds, never loop.
func FuzzReaderOps(f *testing.F) {
	w := NewWriter()
	w.WriteUint(300)
	w.WriteInt(-7)
	w.WriteBool(true)
	w.WriteBytes([]byte("payload"))
	w.WriteString("s")
	w.WriteFixed(make([]byte, 32))
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		ops, payload := data[0], data[1:]
		r := NewReader(payload)
		for i := 0; i < 8; i++ {
			before := r.Remaining()
			var err error
			// Mixing the op byte with a stride-5 walk reaches all six ops
			// for every value of ops (5 and 6 are coprime).
			switch (int(ops) + i*5) % 6 {
			case 0:
				_, err = r.ReadUint()
			case 1:
				_, err = r.ReadInt()
			case 2:
				_, err = r.ReadBool()
			case 3:
				_, err = r.ReadBytes()
			case 4:
				_, err = r.ReadString()
			case 5:
				_, err = r.ReadFixed(int(ops) % 64)
			}
			if r.Remaining() > before {
				t.Fatalf("reader gained input: %d -> %d", before, r.Remaining())
			}
			if err != nil {
				break
			}
		}
		_ = r.Done()
	})
}

// FuzzRoundTrip encodes fuzzer-chosen values and requires decode to return
// them exactly — encode(x) must always decode back to x, because gas is
// charged per calldata byte and commitments are computed over encodings.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), int64(0), false, []byte{}, "")
	f.Add(uint64(1<<63), int64(-1<<62), true, []byte{1, 2, 3}, "commit")
	f.Fuzz(func(t *testing.T, u uint64, i int64, b bool, bs []byte, s string) {
		w := NewWriter()
		w.WriteUint(u)
		w.WriteInt(i)
		w.WriteBool(b)
		w.WriteBytes(bs)
		w.WriteString(s)
		w.WriteFixed(bs)

		r := NewReader(w.Bytes())
		gu, err := r.ReadUint()
		if err != nil || gu != u {
			t.Fatalf("uint: %v %d != %d", err, gu, u)
		}
		gi, err := r.ReadInt()
		if err != nil || gi != i {
			t.Fatalf("int: %v %d != %d", err, gi, i)
		}
		gb, err := r.ReadBool()
		if err != nil || gb != b {
			t.Fatalf("bool: %v %v != %v", err, gb, b)
		}
		gbs, err := r.ReadBytes()
		if err != nil || !bytes.Equal(gbs, bs) {
			t.Fatalf("bytes: %v %x != %x", err, gbs, bs)
		}
		gs, err := r.ReadString()
		if err != nil || gs != s {
			t.Fatalf("string: %v %q != %q", err, gs, s)
		}
		gf, err := r.ReadFixed(len(bs))
		if err != nil || !bytes.Equal(gf, bs) {
			t.Fatalf("fixed: %v %x != %x", err, gf, bs)
		}
		if err := r.Done(); err != nil {
			t.Fatalf("trailing bytes after full decode: %v", err)
		}
	})
}
