// Package wire provides a small deterministic binary codec used to encode
// protocol messages into transaction calldata. Determinism matters twice:
// the gas model charges per calldata byte (as Ethereum does), and
// commitments are computed over encoded messages, so encode(decode(x))
// must equal x.
//
// The format is a simple length-prefixed concatenation: unsigned integers as
// uvarint, signed as zigzag varint, byte strings as uvarint length + bytes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is returned when a reader runs out of input mid-field.
var ErrTruncated = errors.New("wire: truncated input")

// Writer accumulates an encoded message.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the encoded message.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the current encoded length.
func (w *Writer) Len() int { return len(w.buf) }

// WriteUint appends an unsigned integer.
func (w *Writer) WriteUint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// WriteInt appends a signed integer (zigzag encoding).
func (w *Writer) WriteInt(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// WriteBool appends a boolean as one byte.
func (w *Writer) WriteBool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// WriteBytes appends a length-prefixed byte string.
func (w *Writer) WriteBytes(b []byte) {
	w.WriteUint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// WriteString appends a length-prefixed string.
func (w *Writer) WriteString(s string) { w.WriteBytes([]byte(s)) }

// WriteFixed appends raw bytes with no length prefix (fixed-size fields).
func (w *Writer) WriteFixed(b []byte) {
	w.buf = append(w.buf, b...)
}

// Reader decodes a message produced by Writer.
type Reader struct {
	buf []byte
	off int
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Done returns an error unless the reader consumed its entire input; call it
// at the end of a message decode to reject trailing garbage.
func (r *Reader) Done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

// ReadUint decodes an unsigned integer.
func (r *Reader) ReadUint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

// ReadInt decodes a signed integer.
func (r *Reader) ReadInt() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

// ReadBool decodes a boolean.
func (r *Reader) ReadBool() (bool, error) {
	if r.off >= len(r.buf) {
		return false, ErrTruncated
	}
	b := r.buf[r.off]
	r.off++
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("wire: invalid bool byte %#x", b)
	}
}

// ReadBytes decodes a length-prefixed byte string (returning a copy).
func (r *Reader) ReadBytes() ([]byte, error) {
	n, err := r.ReadUint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, ErrTruncated
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+int(n)])
	r.off += int(n)
	return out, nil
}

// ReadString decodes a length-prefixed string.
func (r *Reader) ReadString() (string, error) {
	b, err := r.ReadBytes()
	return string(b), err
}

// ReadFixed decodes n raw bytes (returning a copy).
func (r *Reader) ReadFixed(n int) ([]byte, error) {
	if n > r.Remaining() {
		return nil, ErrTruncated
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+n])
	r.off += n
	return out, nil
}
