package wire_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"dragoon/internal/wire"
)

func TestRoundtrip(t *testing.T) {
	w := wire.NewWriter()
	w.WriteUint(42)
	w.WriteInt(-7)
	w.WriteBool(true)
	w.WriteBytes([]byte("payload"))
	w.WriteString("dragoon")
	w.WriteFixed([]byte{0xde, 0xad})

	r := wire.NewReader(w.Bytes())
	if v, err := r.ReadUint(); err != nil || v != 42 {
		t.Fatalf("ReadUint = %d, %v", v, err)
	}
	if v, err := r.ReadInt(); err != nil || v != -7 {
		t.Fatalf("ReadInt = %d, %v", v, err)
	}
	if v, err := r.ReadBool(); err != nil || !v {
		t.Fatalf("ReadBool = %v, %v", v, err)
	}
	if b, err := r.ReadBytes(); err != nil || !bytes.Equal(b, []byte("payload")) {
		t.Fatalf("ReadBytes = %q, %v", b, err)
	}
	if s, err := r.ReadString(); err != nil || s != "dragoon" {
		t.Fatalf("ReadString = %q, %v", s, err)
	}
	if b, err := r.ReadFixed(2); err != nil || !bytes.Equal(b, []byte{0xde, 0xad}) {
		t.Fatalf("ReadFixed = %x, %v", b, err)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestRoundtripQuick(t *testing.T) {
	f := func(u uint64, i int64, b bool, data []byte, s string) bool {
		w := wire.NewWriter()
		w.WriteUint(u)
		w.WriteInt(i)
		w.WriteBool(b)
		w.WriteBytes(data)
		w.WriteString(s)
		r := wire.NewReader(w.Bytes())
		gu, err1 := r.ReadUint()
		gi, err2 := r.ReadInt()
		gb, err3 := r.ReadBool()
		gd, err4 := r.ReadBytes()
		gs, err5 := r.ReadString()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
			return false
		}
		return gu == u && gi == i && gb == b && bytes.Equal(gd, data) && gs == s && r.Done() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruncation(t *testing.T) {
	w := wire.NewWriter()
	w.WriteBytes(make([]byte, 100))
	enc := w.Bytes()

	r := wire.NewReader(enc[:50])
	if _, err := r.ReadBytes(); err == nil {
		t.Error("truncated bytes accepted")
	}
	r = wire.NewReader(nil)
	if _, err := r.ReadUint(); err == nil {
		t.Error("empty ReadUint accepted")
	}
	if _, err := r.ReadBool(); err == nil {
		t.Error("empty ReadBool accepted")
	}
	if _, err := r.ReadFixed(1); err == nil {
		t.Error("empty ReadFixed accepted")
	}
}

func TestTrailingGarbageDetected(t *testing.T) {
	w := wire.NewWriter()
	w.WriteUint(1)
	w.WriteFixed([]byte{9})
	r := wire.NewReader(w.Bytes())
	if _, err := r.ReadUint(); err != nil {
		t.Fatal(err)
	}
	if err := r.Done(); err == nil {
		t.Error("trailing byte not detected")
	}
}

func TestInvalidBool(t *testing.T) {
	r := wire.NewReader([]byte{7})
	if _, err := r.ReadBool(); err == nil {
		t.Error("invalid bool byte accepted")
	}
}
