// Package worker provides worker behaviour models for experiments and
// security tests: honest workers of configurable accuracy, low-effort bots,
// out-of-range submitters, non-revealers, the copy-paste free-rider the
// paper's confidentiality requirement exists to defeat, and the economic
// adversaries of the paper's incentive analysis — rational workers,
// collusion rings and sybil swarms. Models are deterministic given a
// seeded rng, so every experiment is reproducible.
package worker

import (
	"fmt"
	"math/rand"

	"dragoon/internal/protocol"
	"dragoon/internal/task"
)

// Model describes one simulated worker: a name, a protocol strategy, and
// an answering function.
type Model struct {
	// Name labels the worker in reports ("honest-1", "bot", ...).
	Name string
	// Strategy selects the protocol-level behaviour.
	Strategy protocol.WorkerStrategy
	// Answers produces the plaintext answer vector (nil for strategies
	// that never answer, like the commitment copier).
	Answers protocol.AnswerFn
	// Rational carries a StrategyRational model's economic profile and its
	// two candidate answer streams (nil for every other strategy).
	Rational *protocol.RationalBehaviour
}

// Accurate returns an honest worker who knows the ground truth and answers
// each question correctly with probability accuracy (independently),
// otherwise picking a uniformly random wrong option.
func Accurate(name string, groundTruth []int64, accuracy float64, rng *rand.Rand) Model {
	return Model{
		Name:     name,
		Strategy: protocol.StrategyHonest,
		Answers: func(questions []task.Question, rangeSize int64) []int64 {
			answers := make([]int64, len(questions))
			for i := range answers {
				truth := int64(0)
				if i < len(groundTruth) {
					truth = groundTruth[i]
				}
				if rng.Float64() < accuracy {
					answers[i] = truth
					continue
				}
				wrong := int64(rng.Intn(int(rangeSize - 1)))
				if wrong >= truth {
					wrong++
				}
				answers[i] = wrong
			}
			return answers
		},
	}
}

// Perfect returns a worker who always answers the ground truth.
func Perfect(name string, groundTruth []int64) Model {
	return Model{
		Name:     name,
		Strategy: protocol.StrategyHonest,
		Answers: func(questions []task.Question, rangeSize int64) []int64 {
			answers := make([]int64, len(questions))
			copy(answers, groundTruth)
			return answers
		},
	}
}

// Bot returns a zero-effort worker answering uniformly at random — the
// "free-riding" bot of the paper's introduction.
func Bot(name string, rng *rand.Rand) Model {
	return Model{
		Name:     name,
		Strategy: protocol.StrategyHonest,
		Answers: func(questions []task.Question, rangeSize int64) []int64 {
			answers := make([]int64, len(questions))
			for i := range answers {
				answers[i] = int64(rng.Intn(int(rangeSize)))
			}
			return answers
		},
	}
}

// OutOfRange returns a worker who answers the ground truth except at one
// position, where it submits an out-of-range value — exercising the
// contract's outrange path.
func OutOfRange(name string, groundTruth []int64, at int, value int64) Model {
	return Model{
		Name:     name,
		Strategy: protocol.StrategyHonest,
		Answers: func(questions []task.Question, rangeSize int64) []int64 {
			answers := make([]int64, len(questions))
			copy(answers, groundTruth)
			if at >= 0 && at < len(answers) {
				answers[at] = value
			}
			return answers
		},
	}
}

// NoReveal returns a worker who commits honestly but never opens the
// commitment (c_j = ⊥: no payment; the share returns to the requester).
func NoReveal(name string, groundTruth []int64) Model {
	m := Perfect(name, groundTruth)
	m.Strategy = protocol.StrategyNoReveal
	return m
}

// CopyPaster returns the free-riding attacker who re-submits the first
// answer commitment observed on-chain instead of doing any work.
func CopyPaster(name string) Model {
	return Model{
		Name:     name,
		Strategy: protocol.StrategyCopyCommit,
	}
}

// GarbledRevealer returns a byzantine worker who commits honestly but opens
// the commitment with a garbled ciphertext vector — the commitment binding
// must reject the opening on-chain, leaving the worker unrevealed and
// unpaid.
func GarbledRevealer(name string, groundTruth []int64) Model {
	m := Perfect(name, groundTruth)
	m.Strategy = protocol.StrategyGarbledReveal
	return m
}

// Replayer returns a byzantine worker who commits honestly but replays
// another worker's reveal transcript instead of opening its own commitment
// — the replay cannot open its commitment and must revert.
func Replayer(name string, groundTruth []int64) Model {
	m := Perfect(name, groundTruth)
	m.Strategy = protocol.StrategyReplayReveal
	return m
}

// Equivocator returns a byzantine worker who lands two different
// commitments in one round (double-commit equivocation). The contract must
// accept exactly one; the worker keeps the opening of the first it sent.
func Equivocator(name string, groundTruth []int64) Model {
	m := Perfect(name, groundTruth)
	m.Strategy = protocol.StrategyEquivocate
	return m
}

// LateCommitter returns a worker who lands its (honest) commitment exactly
// on the commit-phase boundary — one adversarial round of delay pushes it
// past the deadline.
func LateCommitter(name string, groundTruth []int64) Model {
	m := Perfect(name, groundTruth)
	m.Strategy = protocol.StrategyLateCommit
	return m
}

// Rational returns the paper's rational worker: on first observing a
// task's posted terms it weighs honest effort (ground truth at the
// profile's accuracy), zero-effort guessing, and abstention, then plays
// the utility-maximizing action. Accuracy 1 plays the exact ground truth;
// lower accuracies draw errors from rng like Accurate; the guess stream
// draws from rng like Bot.
func Rational(name string, groundTruth []int64, profile protocol.RationalProfile, rng *rand.Rand) Model {
	honest := Perfect(name, groundTruth).Answers
	if profile.Accuracy < 1 {
		honest = Accurate(name, groundTruth, profile.Accuracy, rng).Answers
	}
	return Model{
		Name:     name,
		Strategy: protocol.StrategyRational,
		Rational: &protocol.RationalBehaviour{
			Profile: profile,
			Honest:  honest,
			Guess:   Bot(name, rng).Answers,
		},
	}
}

// sharedStream wraps an answer function so the underlying work happens
// once: the first caller resolves the answers, every later caller is
// served the same vector — the "do the work once, submit it many times"
// core of a coalition.
func sharedStream(produce protocol.AnswerFn) protocol.AnswerFn {
	var cached []int64
	return func(qs []task.Question, rangeSize int64) []int64 {
		if cached == nil {
			cached = produce(qs, rangeSize)
		}
		return cached
	}
}

// CollusionRing returns n colluding workers (named prefix0..prefix<n-1>)
// who share ONE answer stream: the ring produces the answers once (via
// stream) and every member submits that same vector under its own
// commitment, encryption and reveal. The golden-standard audit grades the
// one stream, so the ring's verdicts are all-or-nothing — an
// effort-skipping ring fails together and splits nothing.
func CollusionRing(prefix string, n int, stream protocol.AnswerFn) []Model {
	shared := sharedStream(stream)
	models := make([]Model, n)
	for i := range models {
		models[i] = Model{
			Name:     fmt.Sprintf("%s%d", prefix, i),
			Strategy: protocol.StrategyCollude,
			Answers:  shared,
		}
	}
	return models
}

// SybilSwarm returns n chain identities of ONE principal (named
// principal-s0..principal-s<n-1>), each enrolling separately and each
// submitting the principal's single shared answer stream under its own
// commitment. Extra identities multiply the principal's submission costs,
// not its audit odds: the stream's quality decides every address's fate
// at once.
func SybilSwarm(principal string, n int, stream protocol.AnswerFn) []Model {
	shared := sharedStream(stream)
	models := make([]Model, n)
	for i := range models {
		models[i] = Model{
			Name:     fmt.Sprintf("%s-s%d", principal, i),
			Strategy: protocol.StrategySybil,
			Answers:  shared,
		}
	}
	return models
}
