// Package worker provides worker behaviour models for experiments and
// security tests: honest workers of configurable accuracy, low-effort bots,
// out-of-range submitters, non-revealers, and the copy-paste free-rider the
// paper's confidentiality requirement exists to defeat. Models are
// deterministic given a seeded rng, so every experiment is reproducible.
package worker

import (
	"math/rand"

	"dragoon/internal/protocol"
	"dragoon/internal/task"
)

// Model describes one simulated worker: a name, a protocol strategy, and
// an answering function.
type Model struct {
	// Name labels the worker in reports ("honest-1", "bot", ...).
	Name string
	// Strategy selects the protocol-level behaviour.
	Strategy protocol.WorkerStrategy
	// Answers produces the plaintext answer vector (nil for strategies
	// that never answer, like the commitment copier).
	Answers protocol.AnswerFn
}

// Accurate returns an honest worker who knows the ground truth and answers
// each question correctly with probability accuracy (independently),
// otherwise picking a uniformly random wrong option.
func Accurate(name string, groundTruth []int64, accuracy float64, rng *rand.Rand) Model {
	return Model{
		Name:     name,
		Strategy: protocol.StrategyHonest,
		Answers: func(questions []task.Question, rangeSize int64) []int64 {
			answers := make([]int64, len(questions))
			for i := range answers {
				truth := int64(0)
				if i < len(groundTruth) {
					truth = groundTruth[i]
				}
				if rng.Float64() < accuracy {
					answers[i] = truth
					continue
				}
				wrong := int64(rng.Intn(int(rangeSize - 1)))
				if wrong >= truth {
					wrong++
				}
				answers[i] = wrong
			}
			return answers
		},
	}
}

// Perfect returns a worker who always answers the ground truth.
func Perfect(name string, groundTruth []int64) Model {
	return Model{
		Name:     name,
		Strategy: protocol.StrategyHonest,
		Answers: func(questions []task.Question, rangeSize int64) []int64 {
			answers := make([]int64, len(questions))
			copy(answers, groundTruth)
			return answers
		},
	}
}

// Bot returns a zero-effort worker answering uniformly at random — the
// "free-riding" bot of the paper's introduction.
func Bot(name string, rng *rand.Rand) Model {
	return Model{
		Name:     name,
		Strategy: protocol.StrategyHonest,
		Answers: func(questions []task.Question, rangeSize int64) []int64 {
			answers := make([]int64, len(questions))
			for i := range answers {
				answers[i] = int64(rng.Intn(int(rangeSize)))
			}
			return answers
		},
	}
}

// OutOfRange returns a worker who answers the ground truth except at one
// position, where it submits an out-of-range value — exercising the
// contract's outrange path.
func OutOfRange(name string, groundTruth []int64, at int, value int64) Model {
	return Model{
		Name:     name,
		Strategy: protocol.StrategyHonest,
		Answers: func(questions []task.Question, rangeSize int64) []int64 {
			answers := make([]int64, len(questions))
			copy(answers, groundTruth)
			if at >= 0 && at < len(answers) {
				answers[at] = value
			}
			return answers
		},
	}
}

// NoReveal returns a worker who commits honestly but never opens the
// commitment (c_j = ⊥: no payment; the share returns to the requester).
func NoReveal(name string, groundTruth []int64) Model {
	m := Perfect(name, groundTruth)
	m.Strategy = protocol.StrategyNoReveal
	return m
}

// CopyPaster returns the free-riding attacker who re-submits the first
// answer commitment observed on-chain instead of doing any work.
func CopyPaster(name string) Model {
	return Model{
		Name:     name,
		Strategy: protocol.StrategyCopyCommit,
	}
}

// GarbledRevealer returns a byzantine worker who commits honestly but opens
// the commitment with a garbled ciphertext vector — the commitment binding
// must reject the opening on-chain, leaving the worker unrevealed and
// unpaid.
func GarbledRevealer(name string, groundTruth []int64) Model {
	m := Perfect(name, groundTruth)
	m.Strategy = protocol.StrategyGarbledReveal
	return m
}

// Replayer returns a byzantine worker who commits honestly but replays
// another worker's reveal transcript instead of opening its own commitment
// — the replay cannot open its commitment and must revert.
func Replayer(name string, groundTruth []int64) Model {
	m := Perfect(name, groundTruth)
	m.Strategy = protocol.StrategyReplayReveal
	return m
}

// Equivocator returns a byzantine worker who lands two different
// commitments in one round (double-commit equivocation). The contract must
// accept exactly one; the worker keeps the opening of the first it sent.
func Equivocator(name string, groundTruth []int64) Model {
	m := Perfect(name, groundTruth)
	m.Strategy = protocol.StrategyEquivocate
	return m
}

// LateCommitter returns a worker who lands its (honest) commitment exactly
// on the commit-phase boundary — one adversarial round of delay pushes it
// past the deadline.
func LateCommitter(name string, groundTruth []int64) Model {
	m := Perfect(name, groundTruth)
	m.Strategy = protocol.StrategyLateCommit
	return m
}
