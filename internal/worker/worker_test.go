package worker_test

import (
	"math/rand"
	"testing"

	"dragoon/internal/protocol"
	"dragoon/internal/task"
	"dragoon/internal/worker"
)

var questions = make([]task.Question, 50)

func truth(n int) []int64 {
	gt := make([]int64, n)
	for i := range gt {
		gt[i] = int64(i % 3)
	}
	return gt
}

func TestPerfect(t *testing.T) {
	gt := truth(50)
	m := worker.Perfect("p", gt)
	got := m.Answers(questions, 3)
	for i := range got {
		if got[i] != gt[i] {
			t.Fatalf("answer %d = %d, want %d", i, got[i], gt[i])
		}
	}
	if m.Strategy != protocol.StrategyHonest {
		t.Error("wrong strategy")
	}
}

func TestAccurateProbability(t *testing.T) {
	gt := truth(50)
	rng := rand.New(rand.NewSource(1))
	m := worker.Accurate("a", gt, 0.8, rng)
	correct := 0
	trials := 40
	for trial := 0; trial < trials; trial++ {
		got := m.Answers(questions, 3)
		for i := range got {
			if got[i] < 0 || got[i] >= 3 {
				t.Fatalf("answer out of range: %d", got[i])
			}
			if got[i] == gt[i] {
				correct++
			}
		}
	}
	rate := float64(correct) / float64(trials*50)
	if rate < 0.72 || rate > 0.88 {
		t.Errorf("empirical accuracy %.3f, want ≈0.8", rate)
	}
}

func TestAccurateWrongAnswersDiffer(t *testing.T) {
	gt := truth(50)
	rng := rand.New(rand.NewSource(2))
	m := worker.Accurate("a", gt, 0, rng) // always wrong
	got := m.Answers(questions, 3)
	for i := range got {
		if got[i] == gt[i] {
			t.Fatalf("accuracy-0 worker answered %d correctly", i)
		}
		if got[i] < 0 || got[i] >= 3 {
			t.Fatalf("wrong answer out of range: %d", got[i])
		}
	}
}

func TestBotInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := worker.Bot("b", rng)
	got := m.Answers(questions, 4)
	seen := map[int64]bool{}
	for _, a := range got {
		if a < 0 || a >= 4 {
			t.Fatalf("bot answer out of range: %d", a)
		}
		seen[a] = true
	}
	if len(seen) < 2 {
		t.Error("bot answers suspiciously uniform")
	}
}

func TestOutOfRange(t *testing.T) {
	gt := truth(50)
	m := worker.OutOfRange("o", gt, 7, 99)
	got := m.Answers(questions, 3)
	if got[7] != 99 {
		t.Errorf("answer 7 = %d, want 99", got[7])
	}
	if got[8] != gt[8] {
		t.Error("non-target answers changed")
	}
}

func TestNoRevealAndCopyPaster(t *testing.T) {
	gt := truth(50)
	nr := worker.NoReveal("n", gt)
	if nr.Strategy != protocol.StrategyNoReveal || nr.Answers == nil {
		t.Error("NoReveal misconfigured")
	}
	cp := worker.CopyPaster("c")
	if cp.Strategy != protocol.StrategyCopyCommit || cp.Answers != nil {
		t.Error("CopyPaster misconfigured")
	}
}
