package dragoon

import (
	"context"

	"dragoon/internal/market"
)

// MarketplaceConfig configures a multi-task marketplace run: M concurrent
// HIT contracts on a shared simulated chain, with a shared worker
// population whose members may enroll in several tasks, optionally one
// ElGamal key pair across all requesters (§VI), and a single network
// adversary scheduling every task's transactions together. Setting Shards
// splits the run across that many independent chains mined in lockstep:
// tasks are placed per the Placement policy, every population member is
// homed on shard (index mod Shards), and workers paid away from home move
// their reward back through an HTLC escrow in a dedicated settlement epoch
// (tunable via the Settle field) — per-task transcripts stay byte-identical
// to the unsharded run.
type MarketplaceConfig = market.Config

// Placement is the task→shard assignment policy of a sharded marketplace:
// PlaceRoundRobin (the default) or PlaceLeastLoaded.
type Placement = market.Placement

// The placement policies: round-robin assigns task i to shard i mod S;
// least-loaded assigns each task to the shard with the fewest enrolled
// workers so far.
const (
	PlaceRoundRobin  = market.PlaceRoundRobin
	PlaceLeastLoaded = market.PlaceLeastLoaded
)

// SettleConfig tunes (and fault-injects) the HTLC settlement epoch of a
// sharded marketplace run: lock timeouts, preimage-withholding workers, a
// silent bridge.
type SettleConfig = market.SettleConfig

// Settlement records one cross-shard HTLC transfer's outcome — the worker,
// amount and shards involved, and whether it claimed or refunded.
type Settlement = market.Settlement

// MarketplaceTask describes one HIT instance inside a marketplace run: its
// task instance, enrolled population members (by index, in arrival order),
// requester policy/address/key and an optional pinned seed.
type MarketplaceTask = market.TaskSpec

// MarketplaceResult reports a completed marketplace run: per-task results
// plus the shared chain and ledger.
type MarketplaceResult = market.Result

// MarketplaceTaskResult is one task's end state within a marketplace run:
// payments, per-method gas, rounds, and the harvested answers.
type MarketplaceTaskResult = market.TaskResult

// SimulateMarketplace runs every task of the marketplace to completion on
// one shared chain and returns the per-task results. A seeded run is
// deterministic at any Parallelism level, and with an honest scheduler each
// task's payments, gas and harvested answers are identical to running that
// task alone (Simulate is exactly the M=1 case). It is
// SimulateMarketplaceContext with a background context.
func SimulateMarketplace(cfg MarketplaceConfig) (*MarketplaceResult, error) {
	return SimulateMarketplaceContext(context.Background(), cfg)
}

// SimulateMarketplaceContext runs the marketplace to completion under ctx.
// Cancellation is checked at every round boundary, so a cancelled run returns
// ctx.Err() with the shared chain left at a consistent round. A run that
// completes is byte-identical to SimulateMarketplace with the same
// configuration.
func SimulateMarketplaceContext(ctx context.Context, cfg MarketplaceConfig) (*MarketplaceResult, error) {
	return market.RunContext(ctx, cfg)
}
