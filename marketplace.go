package dragoon

import (
	"context"

	"dragoon/internal/market"
)

// MarketplaceConfig configures a multi-task marketplace run: M concurrent
// HIT contracts on ONE shared simulated chain, with a shared worker
// population whose members may enroll in several tasks, optionally one
// ElGamal key pair across all requesters (§VI), and a single network
// adversary scheduling every task's transactions together.
type MarketplaceConfig = market.Config

// MarketplaceTask describes one HIT instance inside a marketplace run: its
// task instance, enrolled population members (by index, in arrival order),
// requester policy/address/key and an optional pinned seed.
type MarketplaceTask = market.TaskSpec

// MarketplaceResult reports a completed marketplace run: per-task results
// plus the shared chain and ledger.
type MarketplaceResult = market.Result

// MarketplaceTaskResult is one task's end state within a marketplace run:
// payments, per-method gas, rounds, and the harvested answers.
type MarketplaceTaskResult = market.TaskResult

// SimulateMarketplace runs every task of the marketplace to completion on
// one shared chain and returns the per-task results. A seeded run is
// deterministic at any Parallelism level, and with an honest scheduler each
// task's payments, gas and harvested answers are identical to running that
// task alone (Simulate is exactly the M=1 case). It is
// SimulateMarketplaceContext with a background context.
func SimulateMarketplace(cfg MarketplaceConfig) (*MarketplaceResult, error) {
	return SimulateMarketplaceContext(context.Background(), cfg)
}

// SimulateMarketplaceContext runs the marketplace to completion under ctx.
// Cancellation is checked at every round boundary, so a cancelled run returns
// ctx.Err() with the shared chain left at a consistent round. A run that
// completes is byte-identical to SimulateMarketplace with the same
// configuration.
func SimulateMarketplaceContext(ctx context.Context, cfg MarketplaceConfig) (*MarketplaceResult, error) {
	return market.RunContext(ctx, cfg)
}
