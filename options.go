package dragoon

import (
	"dragoon/internal/opts"
)

// Options bundles the per-run performance knobs shared by every entry point:
// it is embedded in SimulationConfig, MarketplaceConfig, ScenarioOptions and
// ServiceConfig, so one Options value configures a whole run regardless of
// which harness executes it. Each field is a tri-state override of a
// process-wide default:
//
//   - Parallelism bounds the run's work pool: 0 follows the process default
//     (runtime.NumCPU() unless overridden via SetParallelism), 1 forces
//     fully sequential execution, n > 1 bounds the pool at n.
//   - BatchVerify selects batched proof verification: > 0 forces folded
//     verification on, < 0 forces per-proof verification, 0 follows the
//     process-wide knob (SetBatchVerify).
//   - ParallelExec selects optimistic parallel block execution on the run's
//     chain: > 0 forces the Block-STM-style round executor on, < 0 forces
//     strictly sequential round execution, 0 enables it exactly when the
//     effective worker pool is larger than one.
//
// The zero value means "follow the globals" everywhere, so existing
// configurations that never mention Options behave exactly as before.
// Whatever the settings, a seeded run's transcript — receipts, gas, events,
// payments — is byte-identical: the knobs only change wall-clock time.
//
// Prefer per-run Options over the process-wide SetParallelism /
// SetBatchVerify globals, which are retained as compatibility shims.
type Options = opts.Options
