package dragoon

import (
	"dragoon/internal/service"
)

// Service is a long-lived streaming marketplace: one shared simulated chain
// hosting an open-ended stream of HIT tasks. Tasks are submitted with
// SubmitTask while the chain mines, admitted at the next round boundary,
// driven through exactly the batch code path, and settled individually — a
// task admitted to a live service produces byte-for-byte the transcript it
// would produce in a SimulateMarketplace run with the same seed and the same
// neighbours. The service keeps its state bounded (settled contracts pruned,
// history trimmed to a sliding window) and can be snapshotted between rounds
// and restored byte-identically. See docs/SERVICE.md for the lifecycle.
type Service = service.Service

// ServiceConfig configures a streaming marketplace service: the shared
// population and crypto backend, the retention knobs bounding on-chain
// history, the per-task round budget, and the consolidated Options. Setting
// Shards runs the stream over that many independent chains mined in
// lockstep — admissions route to shards by Placement, and retention,
// pruning and snapshots operate per shard.
type ServiceConfig = service.Config

// ServiceTaskStatus is the settlement report delivered by Service.Poll for
// one submitted task.
type ServiceTaskStatus = service.TaskStatus

// ServiceStats is a point-in-time summary of a running stream: queue depths,
// lifetime task counters, and settlement-latency percentiles.
type ServiceStats = service.Stats

// ServiceRehydrate resolves a task ID back to its full specification when a
// service is restored from a snapshot. Snapshots persist data, not code:
// worker models, policies and instances must be re-supplied by the caller.
type ServiceRehydrate = service.Rehydrate

// ErrServiceClosed is returned by submissions to a closed Service.
var ErrServiceClosed = service.ErrClosed

// NewService starts a streaming marketplace service. Unless cfg.Manual is
// set, a background goroutine mines rounds whenever tasks are queued or
// active; SubmitTask and Poll never block on mining. Close drains the
// goroutine and reports any terminal error.
func NewService(cfg ServiceConfig) (*Service, error) {
	return service.New(cfg)
}

// RestoreService resumes a service from a Snapshot. cfg must carry the same
// code-bearing configuration (group, population, scheduler, options) as the
// snapshotted service; rehydrate re-supplies each active task's spec. The
// restored service continues byte-identically for populations whose models
// are deterministic functions of their recorded answers and observed chain
// state (all built-in models qualify once their answers are recorded).
func RestoreService(cfg ServiceConfig, data []byte, rehydrate ServiceRehydrate) (*Service, error) {
	return service.Restore(cfg, data, rehydrate)
}
