package dragoon

import (
	"context"
	"math/rand"

	"dragoon/internal/chain"
	"dragoon/internal/gas"
	"dragoon/internal/protocol"
	"dragoon/internal/sim"
	"dragoon/internal/worker"
)

// SimulationConfig configures an end-to-end protocol run on the simulated
// chain.
type SimulationConfig = sim.Config

// SimulationResult reports a completed run: payments, per-method gas, the
// harvested answers, and the final chain/ledger state.
type SimulationResult = sim.Result

// WorkerOutcome is one worker's fate in a run.
type WorkerOutcome = sim.WorkerOutcome

// WorkerModel describes a simulated worker's behaviour.
type WorkerModel = worker.Model

// RequesterPolicy selects the requester's evaluation behaviour.
type RequesterPolicy = protocol.RequesterPolicy

// Requester policies (honest, plus the misbehaviours the fairness analysis
// defeats).
const (
	HonestRequester            = protocol.PolicyHonest
	SilentRequester            = protocol.PolicySilent
	NoGoldenRequester          = protocol.PolicyNoGolden
	FalseReportRequester       = protocol.PolicyFalseReport
	PrematureCancelRequester   = protocol.PolicyPrematureCancel
	GarbledProofRequester      = protocol.PolicyGarbledProof
	WithholdQuestionsRequester = protocol.PolicyWithholdQuestions
)

// Scheduler is the network adversary interface: it may reorder each round's
// transactions and delay any fresh transaction by at most one round.
type Scheduler = chain.Scheduler

// Simulate runs the protocol to completion and returns the result. It is
// SimulateContext with a background context.
func Simulate(cfg SimulationConfig) (*SimulationResult, error) {
	return SimulateContext(context.Background(), cfg)
}

// SimulateContext runs the protocol to completion under ctx. Cancellation is
// checked at every round boundary — the only points where stopping cannot
// tear a transcript mid-round — so a cancelled run returns ctx.Err() with the
// simulated chain left at a consistent round. A run that completes is
// byte-identical to Simulate with the same configuration.
func SimulateContext(ctx context.Context, cfg SimulationConfig) (*SimulationResult, error) {
	return sim.RunContext(ctx, cfg)
}

// RunIdealFunctionality executes F_hit (Fig. 2 of the paper) on plaintext
// inputs — the specification the real protocol is tested against.
func RunIdealFunctionality(inst *TaskInstance, workers []sim.IdealWorker, policy RequesterPolicy) sim.IdealOutcome {
	return sim.RunIdeal(inst, workers, policy)
}

// IdealInputs derives F_hit inputs from a completed real run.
func IdealInputs(res *SimulationResult) []sim.IdealWorker {
	return sim.IdealInputs(res)
}

// PerfectWorker answers every question with the ground truth.
func PerfectWorker(name string, groundTruth []int64) WorkerModel {
	return worker.Perfect(name, groundTruth)
}

// AccurateWorker answers correctly with the given per-question probability.
func AccurateWorker(name string, groundTruth []int64, accuracy float64, rng *rand.Rand) WorkerModel {
	return worker.Accurate(name, groundTruth, accuracy, rng)
}

// BotWorker answers uniformly at random (the zero-effort free-rider).
func BotWorker(name string, rng *rand.Rand) WorkerModel {
	return worker.Bot(name, rng)
}

// OutOfRangeWorker submits one out-of-range answer.
func OutOfRangeWorker(name string, groundTruth []int64, at int, value int64) WorkerModel {
	return worker.OutOfRange(name, groundTruth, at, value)
}

// NoRevealWorker commits but never opens its commitment.
func NoRevealWorker(name string, groundTruth []int64) WorkerModel {
	return worker.NoReveal(name, groundTruth)
}

// CopyPasteWorker re-submits the first commitment it observes on-chain —
// the free-riding attack the protocol's confidentiality defeats.
func CopyPasteWorker(name string) WorkerModel {
	return worker.CopyPaster(name)
}

// GarbledRevealWorker commits honestly but opens the commitment with a
// garbled ciphertext vector; the binding commitment rejects the opening.
func GarbledRevealWorker(name string, groundTruth []int64) WorkerModel {
	return worker.GarbledRevealer(name, groundTruth)
}

// ReplayWorker commits honestly but replays another worker's reveal
// transcript instead of opening its own commitment.
func ReplayWorker(name string, groundTruth []int64) WorkerModel {
	return worker.Replayer(name, groundTruth)
}

// EquivocatorWorker lands two different commitments in one round; the
// contract accepts exactly one.
func EquivocatorWorker(name string, groundTruth []int64) WorkerModel {
	return worker.Equivocator(name, groundTruth)
}

// LateCommitWorker lands its commitment exactly on the commit-phase
// boundary; one adversarial round of delay pushes it past the deadline.
func LateCommitWorker(name string, groundTruth []int64) WorkerModel {
	return worker.LateCommitter(name, groundTruth)
}

// AnswerFunc produces a worker's plaintext answers for the fetched
// questions — the behaviour slot of a WorkerModel.
type AnswerFunc = protocol.AnswerFn

// RationalProfile is a rational worker's private type: its accuracy under
// honest effort, its effort and submission costs, and the golden count it
// assumes when pricing a task.
type RationalProfile = protocol.RationalProfile

// RationalWorker is a utility-maximizing worker: it reads the published
// task terms, computes its best response with DecideRational, and then
// abstains, submits zero-effort guesses, or plays honestly at its profiled
// accuracy — whichever maximizes expected utility. The decision latches on
// first observation, so one run realizes one strategy.
func RationalWorker(name string, groundTruth []int64, profile RationalProfile, rng *rand.Rand) WorkerModel {
	return worker.Rational(name, groundTruth, profile, rng)
}

// CollusionRingWorkers builds n workers (prefix0..prefix<n-1>) that share
// one cached answer stream — a coalition splitting one unit of effort
// across n reward slots. The commit/reveal protocol makes the shared
// stream visible to the audit, which accepts or rejects the whole ring
// together.
func CollusionRingWorkers(prefix string, n int, stream AnswerFunc) []WorkerModel {
	return worker.CollusionRing(prefix, n, stream)
}

// SybilSwarmWorkers builds n distinct on-chain identities of one principal
// (principal-s0..), all submitting the principal's single cached answer
// stream — a sybil attack on the quota. Identity multiplication buys the
// principal nothing: every identity still pays the audit with the same
// stream.
func SybilSwarmWorkers(principal string, n int, stream AnswerFunc) []WorkerModel {
	return worker.SybilSwarm(principal, n, stream)
}

// PriceModel converts gas to US dollars.
type PriceModel = gas.PriceModel

// PaperPrices returns the paper's Table III reference rates (1.5 gwei,
// $115/ETH, March 17 2020).
func PaperPrices() PriceModel { return gas.PaperPrices() }

// FormatUSD renders a dollar amount the way the paper's tables do.
func FormatUSD(usd float64) string { return gas.FormatUSD(usd) }

// FormatGas renders gas in the paper's "∼1293 k" style.
func FormatGas(g uint64) string { return gas.FormatGas(g) }
